// Top-level SparseTrain API: an evaluation service.
//
// A Session owns a BackendRegistry of named architectures ("sparsetrain",
// "eyeriss-dense", plus any ArchConfig variant you register), a
// ProgramCache that compiles each (network, sparsity profile, options)
// once, and a fixed-size thread pool that executes submitted jobs in
// parallel. Every run gets a deterministic seed derived from (session
// seed, compiler inputs, backend name), so results are a pure function
// of the inputs — byte-identical whatever the worker count or the order
// jobs were submitted in.
//
// Typical use (see examples/quickstart.cpp):
//   core::Session session;
//   auto net = workload::alexnet_cifar();
//   auto profile = workload::SparsityProfile::pruned(net, 0.9);
//
//   // Evaluation service: submit jobs against any registered backends.
//   sim::ArchConfig half = session.config().sparse_arch;
//   half.pe_groups = 28;
//   session.backends().register_arch("sparsetrain-28g", half);
//   auto job = session.submit(net, profile,
//                             {"sparsetrain", "eyeriss-dense",
//                              "sparsetrain-28g"});
//   const core::EvalResult& r = session.wait(job);
//   r.report("sparsetrain").latency_ms();
//   r.cycle_ratio("eyeriss-dense", "sparsetrain");  // the Fig. 8 speedup
//
//   // Or the classic two-way comparison (thin wrapper over the same
//   // path — Fig. 8 latency/speedup, Fig. 9 energy):
//   auto result = session.compare(net, profile);
//   result.speedup();
//   result.energy_efficiency();
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compiler/program_cache.hpp"
#include "obs/engine_profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/store.hpp"
#include "sim/backend.hpp"
#include "util/thread_pool.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::core {

struct SessionConfig {
  sim::ArchConfig sparse_arch;    ///< defaults to SparseTrain 168 PE
  sim::ArchConfig baseline_arch;  ///< defaults to the dense baseline
  std::size_t batch = 1;          ///< samples per iteration
  std::size_t workers = 0;        ///< pool size; 0 = hardware concurrency
  std::uint64_t seed = 1;         ///< base of the per-run seed derivation
  /// Optional persistent result store. When set, every backend run first
  /// consults the store (a hit skips compilation AND simulation — the
  /// stored report is byte-identical to what the run would produce) and
  /// publishes its report after simulating, so results persist across
  /// processes and users. Publication is best-effort: a store that has
  /// degraded to read-only (persistent publish failures, e.g. a full
  /// disk) drops the put and the evaluation still completes normally.
  /// Shared ownership: several sessions may point at one store.
  std::shared_ptr<serve::ResultStore> store;
  /// Metrics registry the session instruments itself on (program-cache
  /// counters plus per-phase latency histograms session_*_seconds); must
  /// outlive the session. nullptr = no instrumentation, no timestamps.
  obs::Registry* metrics = nullptr;
  /// Record per-stage engine profiles (engine_stage_* on `metrics`) for
  /// every exact run. Requires `metrics`; simulated numbers are
  /// byte-identical either way, and with this off the engine reads no
  /// clocks at all.
  bool profile_engine = false;

  SessionConfig();
};

/// One backend's report within a job.
struct BackendRun {
  std::string backend;
  sim::SimReport report;
  /// Content fingerprint of this run (serve::fingerprint_v1); 0 when the
  /// session has no store attached.
  std::uint64_t fingerprint = 0;
  /// True when the report was served from the persistent store instead
  /// of being simulated.
  bool from_store = false;
};

/// Multi-way outcome of one submitted job: one report per requested
/// backend, in the order the backends were named at submit().
struct EvalResult {
  workload::NetworkConfig net;
  std::string profile_name;
  std::vector<BackendRun> runs;

  bool has(const std::string& backend) const;

  /// Report of the named backend; throws ContractError when the job was
  /// not submitted against it.
  const sim::SimReport& report(const std::string& backend) const;

  /// cycles(numerator) / cycles(denominator) — e.g. the Fig. 8 speedup is
  /// cycle_ratio("eyeriss-dense", "sparsetrain").
  double cycle_ratio(const std::string& numerator,
                     const std::string& denominator) const;

  /// on-chip energy(numerator) / on-chip energy(denominator).
  double energy_ratio(const std::string& numerator,
                      const std::string& denominator) const;
};

/// Both simulators' results on one workload (the classic two-way view).
struct ComparisonResult {
  workload::NetworkConfig net;
  sim::SimReport sparse;
  sim::SimReport dense;

  /// Training latency improvement (dense cycles / sparse cycles).
  double speedup() const;

  /// Energy improvement (dense on-chip energy / sparse on-chip energy).
  double energy_efficiency() const;

  /// Per-sample latency in milliseconds.
  double sparse_latency_ms() const { return sparse.latency_ms(); }
  double dense_latency_ms() const { return dense.latency_ms(); }
};

class Session {
 public:
  /// Names the constructor registers for the two paper architectures.
  static constexpr const char* kSparseBackend = "sparsetrain";
  static constexpr const char* kDenseBackend = "eyeriss-dense";

  /// Ticket for a submitted job.
  struct JobHandle {
    static constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);
    std::size_t id = kInvalid;
    bool valid() const { return id != kInvalid; }
  };

  /// Per-job overrides.
  struct JobOptions {
    std::size_t batch = 0;  ///< samples per iteration; 0 = session default
    /// Engine selection + exact-mode parallelism for this job.
    /// `sim.engine = isa::EngineKind::Exact` makes sparse backends re-drive
    /// the program through the tensor-driven exact engine (results are
    /// byte-identical for any worker count / tile size); dense backends
    /// keep the statistical model, which is the only one with dense
    /// semantics. When `sim.exact.workers != 1` the run borrows the
    /// session's own pool (no per-job thread spawn): stage-graph units
    /// and stage tiles interleave with other jobs' tasks in one
    /// two-level schedule.
    sim::SimOptions sim;
    /// Tracing context of the request this job serves (inactive by
    /// default). When active, the job's phase spans (store.lookup,
    /// compile, simulate, store.publish) parent under it.
    obs::SpanContext trace;
  };

  explicit Session(SessionConfig cfg = SessionConfig{});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const SessionConfig& config() const { return cfg_; }

  /// The backend registry. Register ArchConfig variants here before
  /// submitting against their names.
  sim::BackendRegistry& backends() { return registry_; }
  const sim::BackendRegistry& backends() const { return registry_; }

  /// The shared compiled-program cache (hit/miss stats for sweep logs).
  compiler::ProgramCache& program_cache() { return cache_; }
  const compiler::ProgramCache& program_cache() const { return cache_; }

  /// The persistent result store, or nullptr when none is attached.
  const std::shared_ptr<serve::ResultStore>& result_store() const {
    return store_;
  }

  /// Attaches (or detaches, with nullptr) the persistent store. Not
  /// thread-safe against in-flight jobs: call between submissions.
  void attach_store(std::shared_ptr<serve::ResultStore> store) {
    store_ = std::move(store);
  }

  /// The store key this session would use for one backend run of
  /// (net, profile) under `options` — exactly the fingerprint a
  /// submitted job records in BackendRun::fingerprint. Lets services
  /// coalesce identical requests on the real storage key. Throws on
  /// unknown backend names.
  std::uint64_t run_fingerprint(const workload::NetworkConfig& net,
                                const workload::SparsityProfile& profile,
                                const std::string& backend_name,
                                const JobOptions& options) const;
  std::uint64_t run_fingerprint(const workload::NetworkConfig& net,
                                const workload::SparsityProfile& profile,
                                const std::string& backend_name) const;

  /// Enqueues `net`×`profile` against every named backend. Sparse
  /// backends run the submitted profile; dense backends run an all-dense
  /// profile (and the matching program), as in the paper's comparison.
  /// Throws ContractError on unknown backend names. Jobs execute on the
  /// session's thread pool; results depend only on (session seed,
  /// evaluation inputs, backend name) — not on worker count or
  /// submission order.
  JobHandle submit(const workload::NetworkConfig& net,
                   const workload::SparsityProfile& profile,
                   const std::vector<std::string>& backend_names,
                   const JobOptions& options);
  JobHandle submit(const workload::NetworkConfig& net,
                   const workload::SparsityProfile& profile,
                   const std::vector<std::string>& backend_names);

  /// Blocks until the job finishes; rethrows any job error. The reference
  /// stays valid for the session's lifetime.
  const EvalResult& wait(const JobHandle& handle);

  /// Runs one job to completion and returns its result WITHOUT retaining
  /// it in results() — the submit/wait path for long-running services
  /// (the serve daemon), whose per-request results must not accumulate
  /// for the session's lifetime. Same execution path as submit():
  /// pool-parallel, store-consulting, deterministic.
  EvalResult evaluate(const workload::NetworkConfig& net,
                      const workload::SparsityProfile& profile,
                      const std::vector<std::string>& backend_names,
                      const JobOptions& options);
  EvalResult evaluate(const workload::NetworkConfig& net,
                      const workload::SparsityProfile& profile,
                      const std::vector<std::string>& backend_names);

  /// Blocks until every submitted job has finished.
  void wait();

  /// Waits for everything, then returns all results in submit order.
  std::vector<EvalResult> results();

  /// Runs `net` with `profile` on SparseTrain and with a dense profile on
  /// the baseline. A thin wrapper over the submit path: the evaluation
  /// runs on the pool and counts in the program-cache stats, but is a
  /// one-shot job that is never recorded — nothing accumulates in jobs_
  /// or results(), so compare() loops stay flat in memory like the
  /// pre-service API.
  ComparisonResult compare(const workload::NetworkConfig& net,
                           const workload::SparsityProfile& profile);

  /// Runs only the SparseTrain side (for sweeps/ablations).
  sim::SimReport run_sparse(const workload::NetworkConfig& net,
                            const workload::SparsityProfile& profile);

  /// Runs only the dense baseline.
  sim::SimReport run_dense(const workload::NetworkConfig& net);

 private:
  struct Job {
    EvalResult result;
    std::mutex mu;                           ///< serialises collect()
    std::vector<std::future<void>> pending;  ///< one per backend run
    bool collected = false;                  ///< futures already drained
    std::exception_ptr error;                ///< first task/enqueue error
  };

  /// Validates inputs and enqueues one task per backend into `job` (whose
  /// address must be stable until the tasks finish). Validation errors
  /// throw before any task exists; an enqueue failure is recorded in
  /// job.error with the already-enqueued tasks left to be drained.
  void start_job(Job& job, const workload::NetworkConfig& net,
                 const workload::SparsityProfile& profile,
                 const std::vector<std::string>& backend_names,
                 const JobOptions& options);

  /// Runs one unregistered job to completion (the legacy wrappers —
  /// nothing is retained in jobs_).
  EvalResult evaluate_now(const workload::NetworkConfig& net,
                          const workload::SparsityProfile& profile,
                          const std::vector<std::string>& backend_names);

  Job& job_at(const JobHandle& handle);
  /// Drains every future (even past the first failure), then rethrows the
  /// first error — on this and every later wait of the same job.
  void collect(Job& job);

  SessionConfig cfg_;
  sim::BackendRegistry registry_;
  compiler::ProgramCache cache_;
  std::shared_ptr<serve::ResultStore> store_;  ///< may be nullptr
  /// Per-phase latency histograms (null without SessionConfig::metrics —
  /// and with them null the task path reads no clocks).
  struct PhaseHist {
    obs::Histogram* store_lookup = nullptr;
    obs::Histogram* compile = nullptr;
    obs::Histogram* simulate = nullptr;
    obs::Histogram* store_publish = nullptr;
  };
  PhaseHist hist_;
  std::unique_ptr<obs::EngineProfiler> engine_profiler_;  ///< may be null
  std::mutex jobs_mu_;  ///< guards jobs_ growth (submit vs. wait)
  std::vector<std::unique_ptr<Job>> jobs_;
  util::ThreadPool pool_;  ///< last member: joins before jobs_/cache_ die
};

}  // namespace sparsetrain::core
