// Machine-readable export of evaluation results.
//
// One CSV row (or JSON object) per (job, backend) run, with the aggregate
// cycle/latency/energy numbers; the JSON form additionally carries the
// per-layer-stage breakdown. Benches use these so sweep output can feed
// plotting scripts directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace sparsetrain::core {

/// Header used by export_csv, in column order.
std::vector<std::string> csv_header();

/// Writes one row per (job, backend) run.
void export_csv(const std::vector<EvalResult>& results, std::ostream& out);
void export_csv(const std::vector<EvalResult>& results,
                const std::string& path);

/// JSON array of jobs; each job holds its per-backend reports including
/// the stage breakdown.
void export_json(const std::vector<EvalResult>& results, std::ostream& out);
void export_json(const std::vector<EvalResult>& results,
                 const std::string& path);

}  // namespace sparsetrain::core
