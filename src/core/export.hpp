// Machine-readable export of evaluation results.
//
// One CSV row (or JSON object) per (job, backend) run, with the aggregate
// cycle/latency/energy numbers; the JSON form additionally carries the
// per-layer-stage breakdown. Benches use these so sweep output can feed
// plotting scripts directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace sparsetrain::core {

/// Header used by export_csv, in column order.
std::vector<std::string> csv_header();

/// Writes one row per (job, backend) run.
void export_csv(const std::vector<EvalResult>& results, std::ostream& out);
void export_csv(const std::vector<EvalResult>& results,
                const std::string& path);

/// JSON array of jobs; each job holds its per-backend reports including
/// the stage breakdown.
void export_json(const std::vector<EvalResult>& results, std::ostream& out);
void export_json(const std::vector<EvalResult>& results,
                 const std::string& path);

/// Service-side counters of one session: the ProgramCache hit/miss
/// snapshot plus (when a store is attached) the persistent store's
/// hit/miss/evict counters — the numbers a serving deployment watches.
struct ServiceStats {
  compiler::ProgramCache::Stats cache;
  bool store_attached = false;
  serve::StoreStats store;
};

ServiceStats service_stats(const Session& session);

/// The "store-stats" report: one JSON object (schema
/// "sparsetrain.store_stats/v2") with the cache and store counters, so
/// daemons and drivers export service health without log scraping.
void export_stats_json(const ServiceStats& stats, std::ostream& out);

/// Jobs + stats in one document: {"jobs": [...], "stats": {...}}. The
/// jobs array is byte-identical to the results-only export_json.
void export_json(const std::vector<EvalResult>& results,
                 const Session& session, std::ostream& out);

}  // namespace sparsetrain::core
