#include "core/session.hpp"

#include <chrono>
#include <utility>

#include "baseline/eyeriss_like.hpp"
#include "serve/job.hpp"
#include "util/hash.hpp"
#include "util/require.hpp"

namespace sparsetrain::core {

namespace {

/// Times one evaluation phase into a histogram (when instrumented) and a
/// trace span (when the request is sampled); both off = no clock reads
/// beyond the Span no-op check.
class Phase {
 public:
  Phase(obs::Histogram* h, const obs::SpanContext& trace, const char* name)
      : h_(h), span_(trace, name) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~Phase() {
    if (h_ != nullptr) {
      h_->record(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
    }
  }
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

  obs::Span& span() { return span_; }

 private:
  obs::Histogram* h_;
  obs::Span span_;
  std::chrono::steady_clock::time_point start_{};
};

/// The per-run content seed: mix(session seed, compiler fingerprint) per
/// profile kind, then mix in the backend name. Kept in one place so
/// start_job and run_fingerprint cannot drift.
std::uint64_t derive_run_seed(std::uint64_t session_seed,
                              std::uint64_t program_fp,
                              const std::string& backend_name) {
  return mix64(mix64(session_seed, program_fp), fnv1a(backend_name));
}

}  // namespace

SessionConfig::SessionConfig()
    : baseline_arch(baseline::eyeriss_like_config()) {
  sparse_arch.name = "SparseTrain";
  sparse_arch.sparse = true;
}

bool EvalResult::has(const std::string& backend) const {
  for (const auto& r : runs)
    if (r.backend == backend) return true;
  return false;
}

const sim::SimReport& EvalResult::report(const std::string& backend) const {
  for (const auto& r : runs)
    if (r.backend == backend) return r.report;
  ST_REQUIRE(false, "job has no result for backend '" + backend + "'");
  __builtin_unreachable();
}

double EvalResult::cycle_ratio(const std::string& numerator,
                               const std::string& denominator) const {
  const auto& num = report(numerator);
  const auto& den = report(denominator);
  ST_REQUIRE(den.total_cycles > 0,
             "'" + denominator + "' run produced no cycles");
  ST_REQUIRE(num.total_cycles > 0,
             "'" + numerator + "' run produced no cycles");
  return static_cast<double>(num.total_cycles) /
         static_cast<double>(den.total_cycles);
}

double EvalResult::energy_ratio(const std::string& numerator,
                                const std::string& denominator) const {
  const auto& num = report(numerator);
  const auto& den = report(denominator);
  ST_REQUIRE(den.energy.on_chip_pj() > 0.0,
             "'" + denominator + "' run produced no energy");
  ST_REQUIRE(num.energy.on_chip_pj() > 0.0,
             "'" + numerator + "' run produced no energy");
  return num.energy.on_chip_pj() / den.energy.on_chip_pj();
}

double ComparisonResult::speedup() const {
  ST_REQUIRE(sparse.total_cycles > 0, "sparse run produced no cycles");
  ST_REQUIRE(dense.total_cycles > 0, "dense run produced no cycles");
  return static_cast<double>(dense.total_cycles) /
         static_cast<double>(sparse.total_cycles);
}

double ComparisonResult::energy_efficiency() const {
  ST_REQUIRE(sparse.energy.on_chip_pj() > 0.0,
             "sparse run produced no energy");
  ST_REQUIRE(dense.energy.on_chip_pj() > 0.0,
             "dense run produced no energy");
  // The paper's Fig. 9 breakdown covers the synthesised design + buffer
  // (combinational, register, SRAM); off-chip DRAM is outside the design
  // and identical pressure-wise for both sides, so the efficiency claim is
  // compared on on-chip energy. DRAM is still reported separately.
  return dense.energy.on_chip_pj() / sparse.energy.on_chip_pj();
}

Session::Session(SessionConfig cfg)
    : cfg_(std::move(cfg)), store_(cfg_.store), pool_(cfg_.workers) {
  ST_REQUIRE(cfg_.batch > 0, "batch must be positive");
  ST_REQUIRE(cfg_.sparse_arch.sparse,
             "the sparse architecture must have sparse semantics");
  ST_REQUIRE(!cfg_.baseline_arch.sparse,
             "the baseline must run in dense mode");
  registry_.register_arch(kSparseBackend, cfg_.sparse_arch);
  registry_.register_arch(kDenseBackend, cfg_.baseline_arch);
  if (cfg_.metrics != nullptr) {
    cache_.bind_metrics(*cfg_.metrics);
    hist_.store_lookup =
        &cfg_.metrics->histogram("session_store_lookup_seconds");
    hist_.compile = &cfg_.metrics->histogram("session_compile_seconds");
    hist_.simulate = &cfg_.metrics->histogram("session_simulate_seconds");
    hist_.store_publish =
        &cfg_.metrics->histogram("session_store_publish_seconds");
    if (cfg_.profile_engine) {
      engine_profiler_ =
          std::make_unique<obs::EngineProfiler>(*cfg_.metrics);
    }
  }
}

Session::~Session() {
  // Let in-flight jobs finish before members they reference are torn
  // down; task errors die with their futures.
  pool_.wait_idle();
}

Session::JobHandle Session::submit(
    const workload::NetworkConfig& net,
    const workload::SparsityProfile& profile,
    const std::vector<std::string>& backend_names) {
  return submit(net, profile, backend_names, JobOptions{});
}

Session::JobHandle Session::submit(
    const workload::NetworkConfig& net,
    const workload::SparsityProfile& profile,
    const std::vector<std::string>& backend_names,
    const JobOptions& options) {
  // Build the job completely before publishing it, so a concurrent
  // wait()/results() can never observe a half-submitted job. The Job is
  // heap-allocated, so its address is stable for the running tasks.
  auto job = std::make_unique<Job>();
  start_job(*job, net, profile, backend_names, options);

  JobHandle handle;
  std::lock_guard lock(jobs_mu_);
  handle.id = jobs_.size();
  jobs_.push_back(std::move(job));
  return handle;
}

void Session::start_job(Job& job, const workload::NetworkConfig& net,
                        const workload::SparsityProfile& profile,
                        const std::vector<std::string>& backend_names,
                        const JobOptions& options) {
  ST_REQUIRE(!backend_names.empty(), "job needs at least one backend");
  ST_REQUIRE(profile.size() == net.layers.size(),
             "profile does not match network");

  // Resolve names up front so bad submissions fail on the caller's
  // thread, not inside the pool.
  std::vector<std::shared_ptr<const sim::Backend>> backends;
  backends.reserve(backend_names.size());
  for (const auto& name : backend_names) {
    auto b = registry_.find(name);
    ST_REQUIRE(b != nullptr, "no backend registered under '" + name + "'");
    for (const auto& seen : backends) {
      ST_REQUIRE(seen->name() != name,
                 "backend '" + name + "' listed twice in one job");
    }
    backends.push_back(std::move(b));
  }

  compiler::CompileOptions copts;
  copts.batch = options.batch != 0 ? options.batch : cfg_.batch;
  copts.engine = options.sim.engine;
  // The dense baseline has no exact semantics: its program (and cache
  // entry) always stays statistical, whatever the job requested.
  compiler::CompileOptions dense_copts = copts;
  dense_copts.engine = isa::EngineKind::Statistical;

  // Shared immutable inputs for the worker tasks. The dense profile is
  // materialised once per job and shared by every dense backend.
  auto shared_net = std::make_shared<const workload::NetworkConfig>(net);
  auto shared_profile =
      std::make_shared<const workload::SparsityProfile>(profile);
  std::shared_ptr<const workload::SparsityProfile> shared_dense;
  for (const auto& b : backends) {
    if (!b->sparse()) {
      shared_dense = std::make_shared<const workload::SparsityProfile>(
          workload::SparsityProfile::dense(net));
      break;
    }
  }

  job.result.net = net;
  job.result.profile_name = profile.name();
  job.result.runs.resize(backends.size());

  // Seed from the evaluation's *content* (compiler inputs + backend
  // name), not from submission order: identical evaluations reproduce
  // bit-exactly anywhere in any session, and adding or reordering
  // unrelated jobs in a driver cannot shift published numbers. At most
  // two distinct program fingerprints exist per job (submitted + dense
  // profile); each is computed only if a backend of that kind is present.
  bool any_sparse = false;
  for (const auto& b : backends) any_sparse |= b->sparse();
  const std::uint64_t sparse_prog_fp =
      any_sparse ? compiler::ProgramCache::fingerprint(
                       *shared_net, *shared_profile, copts)
                 : 0;
  const std::uint64_t dense_prog_fp =
      shared_dense ? compiler::ProgramCache::fingerprint(
                         *shared_net, *shared_dense, dense_copts)
                   : 0;

  // Exact jobs borrow the session's own pool instead of spawning one per
  // run: the engine's stage tiles and the stage-graph units then
  // interleave with other jobs' tasks in one two-level schedule on one
  // set of threads (safe because the engine claims work instead of
  // blocking on the queue; results are independent of any pool, so
  // sharing changes wall-clock only). An explicitly borrowed pool or a
  // serial request (workers == 1, the default) is left alone.
  sim::ExactOptions exact_opts = options.sim.exact;
  if (exact_opts.shared_pool == nullptr && exact_opts.workers != 1) {
    exact_opts.shared_pool = &pool_;
  }
  if (exact_opts.profiler == nullptr && engine_profiler_ != nullptr) {
    exact_opts.profiler = engine_profiler_.get();
  }

  try {
    for (std::size_t i = 0; i < backends.size(); ++i) {
      auto backend = backends[i];
      const bool sparse = backend->sparse();
      auto run_profile = sparse ? shared_profile : shared_dense;
      const auto run_copts = sparse ? copts : dense_copts;
      const std::uint64_t prog_fp = sparse ? sparse_prog_fp : dense_prog_fp;
      const std::uint64_t seed =
          derive_run_seed(cfg_.seed, prog_fp, backend->name());
      job.result.runs[i].backend = backend->name();
      // Each task writes only its own pre-sized slot, so no result lock
      // is needed; completion is ordered by the futures.
      job.pending.push_back(pool_.submit(
          [this, backend = std::move(backend), shared_net,
           run_profile = std::move(run_profile), run_copts, seed, prog_fp,
           exact = exact_opts, store = store_, trace = options.trace,
           out = &job.result.runs[i]] {
            // Persistent store first: a hit costs one record read — no
            // compile, no simulation — and is byte-identical to the run
            // it replaces (serve::fingerprint_v1 covers every input the
            // numbers depend on).
            std::uint64_t fp = 0;
            if (store) {
              Phase phase(hist_.store_lookup, trace, "store.lookup");
              phase.span().attr("backend", backend->name());
              fp = serve::fingerprint_v1(*shared_net, *run_profile,
                                         run_copts, backend->name(),
                                         backend->kind(), backend->arch(),
                                         seed);
              out->fingerprint = fp;
              sim::SimReport stored;
              if (store->get_result(fp, stored)) {
                phase.span().attr("hit", "true");
                out->report = std::move(stored);
                out->from_store = true;
                return;
              }
              phase.span().attr("hit", "false");
            }
            compiler::ProgramCache::ProgramPtr program;
            {
              Phase phase(hist_.compile, trace, "compile");
              phase.span().attr("backend", backend->name());
              program = cache_.get(*shared_net, *run_profile, run_copts);
            }
            {
              Phase phase(hist_.simulate, trace, "simulate");
              phase.span().attr("backend", backend->name());
              out->report = backend->run(*program, *shared_net,
                                         *run_profile, seed, exact);
            }
            // Publication is strictly best-effort: a store that degraded
            // to read-only (sick disk) drops the put and the session
            // keeps computing — serving never depends on persistence.
            if (store && !store->read_only()) {
              Phase phase(hist_.store_publish, trace, "store.publish");
              phase.span().attr("backend", backend->name());
              store->put_result(fp, out->report);
              if (!store->contains_program(prog_fp)) {
                store->put_program(
                    prog_fp,
                    {program->name, program->engine, program->batch,
                     program->instructions.size()});
              }
            }
          }));
    }
  } catch (...) {
    // Record a half-enqueued job as a sticky error (surfaced by the next
    // collect) rather than throwing past tasks that already reference
    // this job's storage.
    job.error = std::current_exception();
  }
}

std::uint64_t Session::run_fingerprint(const workload::NetworkConfig& net,
                                       const workload::SparsityProfile& profile,
                                       const std::string& backend_name,
                                       const JobOptions& options) const {
  ST_REQUIRE(profile.size() == net.layers.size(),
             "profile does not match network");
  const auto backend = registry_.find(backend_name);
  ST_REQUIRE(backend != nullptr,
             "no backend registered under '" + backend_name + "'");
  compiler::CompileOptions copts;
  copts.batch = options.batch != 0 ? options.batch : cfg_.batch;
  copts.engine = options.sim.engine;
  // Mirror start_job's dense substitution: dense backends always run an
  // all-dense profile with a statistical-engine program.
  if (backend->sparse()) {
    const std::uint64_t prog_fp =
        compiler::ProgramCache::fingerprint(net, profile, copts);
    return serve::fingerprint_v1(
        net, profile, copts, backend->name(), backend->kind(),
        backend->arch(), derive_run_seed(cfg_.seed, prog_fp, backend->name()));
  }
  copts.engine = isa::EngineKind::Statistical;
  const auto dense = workload::SparsityProfile::dense(net);
  const std::uint64_t prog_fp =
      compiler::ProgramCache::fingerprint(net, dense, copts);
  return serve::fingerprint_v1(
      net, dense, copts, backend->name(), backend->kind(), backend->arch(),
      derive_run_seed(cfg_.seed, prog_fp, backend->name()));
}

std::uint64_t Session::run_fingerprint(
    const workload::NetworkConfig& net,
    const workload::SparsityProfile& profile,
    const std::string& backend_name) const {
  return run_fingerprint(net, profile, backend_name, JobOptions{});
}

Session::Job& Session::job_at(const JobHandle& handle) {
  std::lock_guard lock(jobs_mu_);
  ST_REQUIRE(handle.valid() && handle.id < jobs_.size(),
             "unknown job handle");
  return *jobs_[handle.id];
}

void Session::collect(Job& job) {
  std::lock_guard lock(job.mu);
  if (!job.collected) {
    // Drain every future even when one throws, so no task is left
    // running (or its error lost) behind a failed sibling.
    for (auto& f : job.pending) {
      try {
        f.get();
      } catch (...) {
        if (!job.error) job.error = std::current_exception();
      }
    }
    job.pending.clear();
    job.collected = true;
  }
  if (job.error) std::rethrow_exception(job.error);
}

const EvalResult& Session::wait(const JobHandle& handle) {
  Job& job = job_at(handle);
  collect(job);
  return job.result;
}

EvalResult Session::evaluate_now(
    const workload::NetworkConfig& net,
    const workload::SparsityProfile& profile,
    const std::vector<std::string>& backend_names) {
  return evaluate(net, profile, backend_names, JobOptions{});
}

EvalResult Session::evaluate(const workload::NetworkConfig& net,
                             const workload::SparsityProfile& profile,
                             const std::vector<std::string>& backend_names,
                             const JobOptions& options) {
  Job job;  // never registered in jobs_ — retains nothing after return
  start_job(job, net, profile, backend_names, options);
  collect(job);  // drains every task before `job` dies; rethrows errors
  return std::move(job.result);
}

EvalResult Session::evaluate(const workload::NetworkConfig& net,
                             const workload::SparsityProfile& profile,
                             const std::vector<std::string>& backend_names) {
  return evaluate(net, profile, backend_names, JobOptions{});
}

void Session::wait() {
  std::size_t count = 0;
  {
    std::lock_guard lock(jobs_mu_);
    count = jobs_.size();
  }
  for (std::size_t i = 0; i < count; ++i) wait(JobHandle{i});
}

std::vector<EvalResult> Session::results() {
  // Snapshot the job count first: jobs submitted by another thread after
  // this point are neither waited for nor copied half-written.
  std::size_t count = 0;
  {
    std::lock_guard lock(jobs_mu_);
    count = jobs_.size();
  }
  std::vector<EvalResult> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(wait(JobHandle{i}));  // collects before copying
  }
  return out;
}

ComparisonResult Session::compare(const workload::NetworkConfig& net,
                                  const workload::SparsityProfile& profile) {
  EvalResult r = evaluate_now(net, profile, {kSparseBackend, kDenseBackend});
  ComparisonResult result;
  result.net = std::move(r.net);
  result.sparse = r.report(kSparseBackend);
  result.dense = r.report(kDenseBackend);
  return result;
}

sim::SimReport Session::run_sparse(const workload::NetworkConfig& net,
                                   const workload::SparsityProfile& profile) {
  return evaluate_now(net, profile, {kSparseBackend})
      .report(kSparseBackend);
}

sim::SimReport Session::run_dense(const workload::NetworkConfig& net) {
  return evaluate_now(net, workload::SparsityProfile::dense(net),
                      {kDenseBackend})
      .report(kDenseBackend);
}

}  // namespace sparsetrain::core
