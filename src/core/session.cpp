#include "core/session.hpp"

#include "compiler/compiler.hpp"
#include "util/require.hpp"

namespace sparsetrain::core {

SessionConfig::SessionConfig()
    : baseline_arch(baseline::eyeriss_like_config()) {
  sparse_arch.name = "SparseTrain";
  sparse_arch.sparse = true;
}

double ComparisonResult::speedup() const {
  ST_REQUIRE(sparse.total_cycles > 0, "sparse run produced no cycles");
  return static_cast<double>(dense.total_cycles) /
         static_cast<double>(sparse.total_cycles);
}

double ComparisonResult::energy_efficiency() const {
  ST_REQUIRE(sparse.energy.on_chip_pj() > 0.0,
             "sparse run produced no energy");
  // The paper's Fig. 9 breakdown covers the synthesised design + buffer
  // (combinational, register, SRAM); off-chip DRAM is outside the design
  // and identical pressure-wise for both sides, so the efficiency claim is
  // compared on on-chip energy. DRAM is still reported separately.
  return dense.energy.on_chip_pj() / sparse.energy.on_chip_pj();
}

Session::Session(SessionConfig cfg)
    : cfg_(std::move(cfg)),
      sparse_accel_(cfg_.sparse_arch),
      baseline_(cfg_.baseline_arch) {
  ST_REQUIRE(cfg_.batch > 0, "batch must be positive");
}

ComparisonResult Session::compare(
    const workload::NetworkConfig& net,
    const workload::SparsityProfile& profile) const {
  ComparisonResult result;
  result.net = net;
  result.sparse = run_sparse(net, profile);
  result.dense = run_dense(net);
  return result;
}

sim::SimReport Session::run_sparse(
    const workload::NetworkConfig& net,
    const workload::SparsityProfile& profile) const {
  compiler::CompileOptions opts;
  opts.batch = cfg_.batch;
  const isa::Program program = compiler::compile(net, profile, opts);
  return sparse_accel_.run(program, net, profile);
}

sim::SimReport Session::run_dense(const workload::NetworkConfig& net) const {
  const auto dense_profile = workload::SparsityProfile::dense(net);
  compiler::CompileOptions opts;
  opts.batch = cfg_.batch;
  const isa::Program program = compiler::compile(net, dense_profile, opts);
  return baseline_.run(program, net, dense_profile);
}

}  // namespace sparsetrain::core
