#include "core/export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/require.hpp"

namespace sparsetrain::core {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void report_json(std::ostream& out, const sim::SimReport& r,
                 const std::string& indent) {
  out << indent << "{\"backend\": \"" << json_escape(r.backend) << "\",\n"
      << indent << " \"arch\": \"" << json_escape(r.arch_name) << "\",\n"
      << indent << " \"engine\": \"" << isa::engine_name(r.engine) << "\",\n"
      << indent << " \"program\": \"" << json_escape(r.program_name)
      << "\",\n"
      << indent << " \"profile\": \"" << json_escape(r.profile_name)
      << "\",\n"
      << indent << " \"clock_ghz\": " << num(r.clock_ghz) << ",\n"
      << indent << " \"total_pes\": " << r.total_pes << ",\n"
      << indent << " \"total_cycles\": " << r.total_cycles << ",\n"
      << indent << " \"latency_ms\": " << num(r.latency_ms()) << ",\n"
      << indent << " \"utilization\": " << num(r.utilization()) << ",\n"
      << indent << " \"energy_pj\": {\"comb\": " << num(r.energy.comb_pj)
      << ", \"reg\": " << num(r.energy.reg_pj)
      << ", \"sram\": " << num(r.energy.sram_pj)
      << ", \"dram\": " << num(r.energy.dram_pj) << "},\n"
      << indent << " \"stages\": [";
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    const auto& s = r.stages[i];
    if (i) out << ", ";
    out << "{\"layer\": \"" << json_escape(s.layer_name) << "\", \"stage\": \""
        << isa::stage_name(s.stage) << "\", \"cycles\": " << s.cycles
        << ", \"on_chip_pj\": " << num(s.energy.on_chip_pj()) << '}';
  }
  out << "]}";
}

}  // namespace

std::vector<std::string> csv_header() {
  return {"workload",    "profile",    "backend",     "arch",
          "engine",      "total_cycles", "latency_ms", "utilization",
          "comb_uj",     "reg_uj",     "sram_uj",     "on_chip_uj",
          "dram_uj"};
}

void export_csv(const std::vector<EvalResult>& results, std::ostream& out) {
  CsvWriter csv(out, csv_header());
  for (const auto& job : results) {
    for (const auto& run : job.runs) {
      const auto& r = run.report;
      // The report's own profile, not the job's: dense backends run an
      // all-dense profile whatever the job submitted (matches the JSON).
      csv.add_row({job.net.name, r.profile_name, run.backend, r.arch_name,
                   isa::engine_name(r.engine),
                   std::to_string(r.total_cycles), num(r.latency_ms()),
                   num(r.utilization()), num(r.energy.comb_pj * 1e-6),
                   num(r.energy.reg_pj * 1e-6), num(r.energy.sram_pj * 1e-6),
                   num(r.energy.on_chip_pj() * 1e-6),
                   num(r.energy.dram_pj * 1e-6)});
    }
  }
}

void export_csv(const std::vector<EvalResult>& results,
                const std::string& path) {
  std::ofstream out(path);
  ST_REQUIRE(static_cast<bool>(out), "cannot open '" + path + "'");
  export_csv(results, out);
}

void export_json(const std::vector<EvalResult>& results, std::ostream& out) {
  out << "[\n";
  for (std::size_t j = 0; j < results.size(); ++j) {
    const auto& job = results[j];
    out << " {\"workload\": \"" << json_escape(job.net.name)
        << "\", \"profile\": \"" << json_escape(job.profile_name)
        << "\", \"runs\": [\n";
    for (std::size_t i = 0; i < job.runs.size(); ++i) {
      report_json(out, job.runs[i].report, "   ");
      if (i + 1 < job.runs.size()) out << ',';
      out << '\n';
    }
    out << " ]}" << (j + 1 < results.size() ? "," : "") << '\n';
  }
  out << "]\n";
}

void export_json(const std::vector<EvalResult>& results,
                 const std::string& path) {
  std::ofstream out(path);
  ST_REQUIRE(static_cast<bool>(out), "cannot open '" + path + "'");
  export_json(results, out);
}

ServiceStats service_stats(const Session& session) {
  ServiceStats s;
  s.cache = session.program_cache().snapshot();
  if (session.result_store()) {
    s.store_attached = true;
    s.store = session.result_store()->stats();
  }
  return s;
}

void export_stats_json(const ServiceStats& s, std::ostream& out) {
  // v2 adds the degradation fields (read_only, publish_failures,
  // dropped_publishes, tmp_cleaned); v1 consumers that only read the
  // original counters keep working, the schema tag tells them more is
  // there.
  out << "{\"schema\": \"sparsetrain.store_stats/v2\",\n"
      << " \"program_cache\": {\"hits\": " << s.cache.hits
      << ", \"misses\": " << s.cache.misses
      << ", \"lookups\": " << s.cache.lookups() << "},\n"
      << " \"store_attached\": " << (s.store_attached ? "true" : "false");
  if (s.store_attached) {
    out << ",\n \"store\": {\"hits\": " << s.store.hits
        << ", \"misses\": " << s.store.misses
        << ", \"hit_rate\": " << num(s.store.hit_rate())
        << ", \"puts\": " << s.store.puts
        << ", \"evictions\": " << s.store.evictions
        << ", \"torn_skipped\": " << s.store.torn_skipped
        << ", \"tmp_cleaned\": " << s.store.tmp_cleaned
        << ", \"publish_failures\": " << s.store.publish_failures
        << ", \"dropped_publishes\": " << s.store.dropped_publishes
        << ", \"read_only\": " << (s.store.read_only ? "true" : "false")
        << ", \"entries\": " << s.store.entries
        << ", \"program_entries\": " << s.store.program_entries
        << ", \"bytes\": " << s.store.bytes << "}";
  }
  out << "}\n";
}

void export_json(const std::vector<EvalResult>& results,
                 const Session& session, std::ostream& out) {
  out << "{\"jobs\": ";
  export_json(results, out);
  out << ", \"stats\": ";
  export_stats_json(service_stats(session), out);
  out << "}\n";
}

}  // namespace sparsetrain::core
