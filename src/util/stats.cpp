#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace sparsetrain {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double inverse_normal_cdf(double p) {
  ST_REQUIRE(p > 0.0 && p < 1.0, "inverse_normal_cdf domain is (0,1)");

  // Acklam's coefficients.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};

  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double RunningStats::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geometric_mean(std::span<const double> xs) {
  ST_REQUIRE(!xs.empty(), "geometric_mean of empty span");
  double log_sum = 0.0;
  for (double x : xs) {
    ST_REQUIRE(x > 0.0, "geometric_mean needs positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean_abs(std::span<const float> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (float x : xs) s += std::abs(static_cast<double>(x));
  return s / static_cast<double>(xs.size());
}

double zero_fraction(std::span<const float> xs) {
  if (xs.empty()) return 0.0;
  std::size_t zeros = 0;
  for (float x : xs)
    if (x == 0.0f) ++zeros;
  return static_cast<double>(zeros) / static_cast<double>(xs.size());
}

double density(std::span<const float> xs) { return 1.0 - zero_fraction(xs); }

double quantile(std::vector<double> xs, double q) {
  ST_REQUIRE(!xs.empty(), "quantile of empty vector");
  ST_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace sparsetrain
