#include "util/csv.hpp"

#include "util/require.hpp"

namespace sparsetrain {

namespace {
std::string escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : file_(path), out_(&file_), arity_(header.size()) {
  ST_REQUIRE(arity_ > 0, "csv header must be non-empty");
  write_row(header);
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(&out), arity_(header.size()) {
  ST_REQUIRE(arity_ > 0, "csv header must be non-empty");
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  ST_REQUIRE(row.size() == arity_, "csv row arity mismatch");
  write_row(row);
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    *out_ << escape(row[i]);
    if (i + 1 < row.size()) *out_ << ',';
  }
  *out_ << '\n';
}

}  // namespace sparsetrain
