// Fixed-size worker pool for the evaluation service.
//
// core::Session executes (workload × backend) jobs on one of these so
// sweeps and multi-backend comparisons use every core. The pool makes no
// ordering promises; callers that need determinism must make each task
// self-contained (the Session derives each run's seed from the
// evaluation's content, so simulation results are identical whatever the
// worker count — see tests/test_session_api.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sparsetrain::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t workers = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueues `fn`. The future resolves when the task returns (or rethrows
  /// what the task threw).
  std::future<void> submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs `fn(first, last)` over every contiguous chunk of at most `grain`
/// indices covering [0, total), on `pool` when one is given. The chunk
/// boundaries depend only on (total, grain) — never on the pool size — so
/// a caller that merges per-chunk results in chunk order gets identical
/// output for any worker count. Blocks until every chunk finished;
/// rethrows the first chunk error (after all chunks were drained). With a
/// null pool, a zero grain, or a single chunk the call runs inline.
///
/// Safe to call from inside a pool task (nested data parallelism): chunks
/// are *claimed* from a shared counter rather than dispatched one-per-pool
///-task, and the calling thread claims chunks too. The caller therefore
/// never blocks on queued work — only on chunks another thread is actively
/// executing — so a worker calling parallel_for on its own pool cannot
/// deadlock, whatever the pool size or queue depth.
void parallel_for(ThreadPool* pool, std::size_t total, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace sparsetrain::util
