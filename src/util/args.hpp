// Minimal command-line flag parsing for the bench/example binaries
// (--key=value and --key value forms, plus --help listing).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sparsetrain {

class Args {
 public:
  /// Parses argv; unknown positional arguments are kept in positionals().
  Args(int argc, const char* const argv[]);

  bool has(const std::string& key) const;

  /// String value or default.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric value or default; throws ContractError on a malformed number.
  double get(const std::string& key, double fallback) const;
  long get(const std::string& key, long fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace sparsetrain
