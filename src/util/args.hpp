// Minimal command-line flag parsing for the bench/example binaries
// (--key=value and --key value forms, plus --help listing).
//
// Drivers declare their flags up front; anything unrecognised is a hard
// error whose message includes the usage dump, so a typoed sweep flag
// (`--worker 4`) dies loudly instead of silently benchmarking the
// defaults. The spec also records which flags take a value, so boolean
// flags never swallow the token after them.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sparsetrain {

class Args {
 public:
  /// One declared flag. Boolean flags (takes_value = false) never
  /// consume the following token.
  struct Flag {
    std::string name;
    std::string help;
    bool takes_value = true;
  };

  /// Parse-only constructor (no spec — tests and embedders). Unknown
  /// flags are kept; a bare flag consumes the next non-flag token as its
  /// value. Drivers should use the spec constructor below instead.
  Args(int argc, const char* const argv[]);

  /// Strict constructor: every --flag must appear in `spec` (--help is
  /// always accepted, see help_requested()). Unrecognised flags,
  /// positional arguments, and value-less occurrences of value flags
  /// throw ContractError with the usage dump in the message.
  Args(int argc, const char* const argv[], std::vector<Flag> spec);

  bool has(const std::string& key) const;

  /// String value or default.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric value or default; throws ContractError on a malformed number.
  double get(const std::string& key, double fallback) const;
  long get(const std::string& key, long fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// True when --help was passed to the strict constructor; the driver
  /// should print usage() and exit 0.
  bool help_requested() const { return help_requested_; }

  /// Usage dump built from the spec (strict constructor only).
  std::string usage(const std::string& prog) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  std::vector<Flag> spec_;
  std::string prog_ = "prog";
  bool help_requested_ = false;
};

}  // namespace sparsetrain
