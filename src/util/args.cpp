#include "util/args.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/require.hpp"

namespace sparsetrain {

Args::Args(int argc, const char* const argv[]) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // boolean flag
    }
  }
}

Args::Args(int argc, const char* const argv[], std::vector<Flag> spec)
    : spec_(std::move(spec)) {
  if (argc > 0) prog_ = argv[0];
  const auto fail = [this](const std::string& what) {
    ST_REQUIRE(false, what + "\n" + usage(prog_));
  };
  const auto find_flag = [this](const std::string& name) -> const Flag* {
    for (const Flag& f : spec_) {
      if (f.name == name) return &f;
    }
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      fail("unexpected positional argument '" + arg + "'");
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    if (name == "help") {
      help_requested_ = true;
      continue;
    }
    const Flag* flag = find_flag(name);
    if (flag == nullptr) fail("unknown flag '--" + name + "'");
    if (flag->takes_value) {
      if (!has_value) {
        // A following "--token" is a flag, not a value — swallowing it
        // would silently drop that flag. Values that genuinely start
        // with "--" must use the --key=value form.
        if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
          fail("flag '--" + name + "' needs a value");
        }
        value = argv[++i];
      }
      values_[name] = value;
    } else {
      if (has_value) fail("flag '--" + name + "' does not take a value");
      values_[name] = "";
    }
  }
}

std::string Args::usage(const std::string& prog) const {
  std::ostringstream os;
  os << "usage: " << prog;
  for (const Flag& f : spec_) {
    os << " [--" << f.name << (f.takes_value ? " <value>" : "") << ']';
  }
  os << "\n";
  std::size_t width = 4;  // "help"
  for (const Flag& f : spec_) width = std::max(width, f.name.size());
  for (const Flag& f : spec_) {
    os << "  --" << f.name << std::string(width - f.name.size() + 2, ' ')
       << f.help << "\n";
  }
  os << "  --help" << std::string(width - 4 + 2, ' ')
     << "print this message and exit\n";
  return os.str();
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Args::get(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  ST_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
             "malformed numeric flag --" + key + "=" + it->second);
  return v;
}

long Args::get(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  ST_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
             "malformed integer flag --" + key + "=" + it->second);
  return v;
}

}  // namespace sparsetrain
