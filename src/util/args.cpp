#include "util/args.hpp"

#include <cstdlib>

#include "util/require.hpp"

namespace sparsetrain {

Args::Args(int argc, const char* const argv[]) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // boolean flag
    }
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Args::get(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  ST_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
             "malformed numeric flag --" + key + "=" + it->second);
  return v;
}

long Args::get(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  ST_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
             "malformed integer flag --" + key + "=" + it->second);
  return v;
}

}  // namespace sparsetrain
