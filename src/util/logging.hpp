// Tiny levelled logger. Default level is Info; benches lower it to Warn so
// table output stays clean.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace sparsetrain {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  detail::log_emit(level, os.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::Debug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::Info, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::Warn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::Error, std::forward<Args>(args)...);
}

}  // namespace sparsetrain
