// Lightweight contract checking used across the library.
//
// ST_REQUIRE(cond, msg) throws sparsetrain::ContractError with file/line
// context. Contracts are always on: the library is a simulator and silent
// shape/index corruption is far more expensive than the check.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sparsetrain {

/// Error thrown when a library precondition or invariant is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace sparsetrain

#define ST_REQUIRE(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::sparsetrain::detail::contract_fail(#cond, __FILE__, __LINE__, \
                                           (msg));                   \
    }                                                                \
  } while (false)

#define ST_REQUIRE0(cond) ST_REQUIRE(cond, "")
