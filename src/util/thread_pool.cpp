#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/require.hpp"

namespace sparsetrain::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  ST_REQUIRE(fn != nullptr, "cannot submit an empty task");
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::unique_lock lock(mu_);
    ST_REQUIRE(!stopping_, "pool is shutting down");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

namespace {

/// Shared state of one parallel_for call. Heap-held behind a shared_ptr:
/// helper tasks that land on the pool after the work is already gone must
/// still be able to *fail* their claim safely, even though the caller's
/// frame (and the chunk body's captures) died with the call. A helper
/// touches the body only after a successful claim, and the caller cannot
/// return before every claimed chunk finished, so the body's captured
/// references are always alive when dereferenced.
struct ForRun {
  std::function<void(std::size_t, std::size_t)> body;
  std::size_t total = 0;
  std::size_t grain = 0;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};  ///< claim counter
  std::atomic<std::size_t> done{0};  ///< finished chunks (even on error)
  std::mutex mu;
  std::condition_variable all_done;
  std::exception_ptr error;  ///< first chunk/submit error (guarded by mu)

  /// Claims and runs chunks until none are left. Every claimed chunk
  /// counts as done even when its body throws, so the caller's drain is
  /// total and no error can strand a waiter.
  void run_chunks() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t first = c * grain;
      const std::size_t last = std::min(first + grain, total);
      try {
        body(first, last);
      } catch (...) {
        std::lock_guard lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        // Empty critical section pairs with the waiter's predicate check,
        // closing the check-then-wait race.
        { std::lock_guard lock(mu); }
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

void parallel_for(ThreadPool* pool, std::size_t total, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ST_REQUIRE(fn != nullptr, "parallel_for needs a body");
  if (total == 0) return;
  if (pool == nullptr || grain == 0 || grain >= total) {
    fn(0, total);
    return;
  }

  auto run = std::make_shared<ForRun>();
  run->body = fn;
  run->total = total;
  run->grain = grain;
  run->chunks = (total + grain - 1) / grain;

  // Recruit at most one helper per pool thread (the caller claims chunks
  // too, so helpers are an acceleration, never a requirement — if the
  // pool is saturated or shutting down the caller just does all the work
  // itself, which is what makes nested calls from pool workers safe).
  const std::size_t helpers =
      std::min(pool->worker_count(), run->chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    try {
      pool->submit([run] { run->run_chunks(); });
    } catch (...) {
      std::lock_guard lock(run->mu);
      if (!run->error) run->error = std::current_exception();
      break;
    }
  }

  run->run_chunks();

  std::unique_lock lock(run->mu);
  run->all_done.wait(lock, [&] {
    return run->done.load(std::memory_order_acquire) == run->chunks;
  });
  if (run->error) std::rethrow_exception(run->error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::unique_lock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace sparsetrain::util
