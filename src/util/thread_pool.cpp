#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/require.hpp"

namespace sparsetrain::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  ST_REQUIRE(fn != nullptr, "cannot submit an empty task");
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::unique_lock lock(mu_);
    ST_REQUIRE(!stopping_, "pool is shutting down");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void parallel_for(ThreadPool* pool, std::size_t total, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ST_REQUIRE(fn != nullptr, "parallel_for needs a body");
  if (total == 0) return;
  if (pool == nullptr || grain == 0 || grain >= total) {
    fn(0, total);
    return;
  }
  // Drain everything before surfacing an error — whether a chunk threw
  // or a later submit() failed: the body captures caller state by
  // reference, so no chunk may outlive this frame.
  std::vector<std::future<void>> chunks;
  chunks.reserve((total + grain - 1) / grain);
  std::exception_ptr error;
  try {
    for (std::size_t first = 0; first < total; first += grain) {
      const std::size_t last = std::min(first + grain, total);
      chunks.push_back(pool->submit([&fn, first, last] { fn(first, last); }));
    }
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& c : chunks) {
    try {
      c.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::unique_lock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace sparsetrain::util
