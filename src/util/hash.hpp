// Small non-cryptographic hashing shared by the program cache
// (fingerprints) and the session (seed derivation).
#pragma once

#include <cstdint>
#include <string_view>

namespace sparsetrain {

/// 64-bit FNV-1a.
inline std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sparsetrain
