// Small non-cryptographic hashing shared by the program cache
// (fingerprints) and the session (seed derivation).
#pragma once

#include <cstdint>
#include <string_view>

namespace sparsetrain {

/// 64-bit FNV-1a.
inline std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finaliser over (a, b) — decorrelates seed/fingerprint/tag
/// tuples into independent streams. The session's per-run seeds and the
/// exact engine's tensor-synthesis streams both derive from this one
/// definition, so reproducibility cannot drift between them.
inline std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace sparsetrain
