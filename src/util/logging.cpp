#include "util/logging.hpp"

namespace sparsetrain {

namespace {
LogLevel g_level = LogLevel::Info;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::ostream& os = level >= LogLevel::Warn ? std::cerr : std::clog;
  os << "[" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace sparsetrain
