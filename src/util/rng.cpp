#include "util/rng.hpp"

#include <cmath>

#include "util/require.hpp"

namespace sparsetrain {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ST_REQUIRE(lo <= hi, "uniform bounds reversed");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ST_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng((*this)()); }

}  // namespace sparsetrain
