// Deterministic pseudo-random number generation.
//
// The whole library must be reproducible run-to-run (the stochastic pruning
// rule itself consumes randomness, and experiments must be repeatable), so
// every randomised component takes an explicit Rng instead of touching
// global state. The generator is xoshiro256**, which is small, fast and has
// no observable bias for the sample sizes used here.
#pragma once

#include <cstdint>

namespace sparsetrain {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// <random> adaptors, but the members below avoid libstdc++'s distribution
/// objects so streams are stable across standard library versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Creates an independent child stream (for per-layer / per-worker use).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sparsetrain
