#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace sparsetrain {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ST_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  ST_REQUIRE(row.size() == header_.size(),
             "row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::times(double v, int precision) {
  return num(v, precision) + "x";
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

}  // namespace sparsetrain
