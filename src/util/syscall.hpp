// Thin helpers over raw POSIX calls.
//
// util::retry_eintr wraps a syscall-shaped callable (returns a signed
// count, sets errno) and retries it while it fails with EINTR — a signal
// landing mid-read must never look like a transport failure. Every raw
// ::read/::write/::accept in the serving stack goes through it.
#pragma once

#include <cerrno>
#include <cstring>
#include <string>

namespace sparsetrain::util {

/// Calls `fn` until it returns >= 0 or fails with an errno other than
/// EINTR. Returns the last result (errno preserved on failure).
template <typename Fn>
auto retry_eintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) r;
  do {
    r = fn();
  } while (r < 0 && errno == EINTR);
  return r;
}

/// Human-readable errno text ("ENOSPC: No space left on device"-ish).
inline std::string errno_text(int err) {
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) +
         ")";
}

}  // namespace sparsetrain::util
