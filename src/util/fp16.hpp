// Software IEEE-754 binary16 conversions.
//
// The modelled accelerator has a 16-bit datapath; this module quantifies
// what that costs numerically. Used by the quantisation tests and by the
// traffic model's "two bytes per value" assumption.
#pragma once

#include <cstdint>
#include <span>

namespace sparsetrain {

/// Rounds a float to the nearest representable binary16 (ties to even),
/// returning its bit pattern. Handles subnormals, infinities and NaN.
std::uint16_t float_to_half_bits(float value);

/// Expands a binary16 bit pattern back to float.
float half_bits_to_float(std::uint16_t bits);

/// Round-trips through binary16 (the value the accelerator would compute
/// with).
inline float quantize_half(float value) {
  return half_bits_to_float(float_to_half_bits(value));
}

/// Quantises a buffer in place; returns the maximum absolute error.
float quantize_half_inplace(std::span<float> values);

}  // namespace sparsetrain
