// ASCII table formatting for benchmark output.
//
// Every bench binary prints its reproduction of a paper table/figure as an
// aligned text table; this is the single shared implementation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sparsetrain {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Renders with column padding and a rule under the header.
  std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

  /// Formats a double with the given precision (fixed notation).
  static std::string num(double v, int precision = 2);

  /// Formats "x.xx×" speedup-style values.
  static std::string times(double v, int precision = 2);

  /// Formats a percentage ("12.3%").
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sparsetrain
