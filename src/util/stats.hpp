// Statistical helpers shared by the pruning algorithm, the instrumentation
// and the benchmark reporters.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sparsetrain {

/// Standard normal cumulative distribution function Φ(x).
double normal_cdf(double x);

/// Inverse of the standard normal CDF, Φ⁻¹(p) for p in (0, 1).
///
/// Peter Acklam's rational approximation refined with one Halley step;
/// absolute error < 1e-9 over the full open interval, which is far below
/// what threshold determination needs.
double inverse_normal_cdf(double p);

/// Single-pass accumulator for mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a span; 0 for an empty span.
double mean_of(std::span<const double> xs);

/// Geometric mean; precondition: all values > 0.
double geometric_mean(std::span<const double> xs);

/// Mean of |x| over a span of floats (the pruning A/n statistic).
double mean_abs(std::span<const float> xs);

/// Fraction of exact zeros in a span.
double zero_fraction(std::span<const float> xs);

/// Fraction of nonzeros (the paper's ρ_nnz density).
double density(std::span<const float> xs);

/// Empirical quantile (linear interpolation). q in [0, 1].
double quantile(std::vector<double> xs, double q);

}  // namespace sparsetrain
