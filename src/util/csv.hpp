// Minimal CSV writer so experiments can dump machine-readable series
// alongside the human-readable tables.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace sparsetrain {

/// Streams rows into a CSV file (or any ostream). Values containing
/// commas/quotes/newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) the file and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Writes into a caller-owned stream (which must outlive the writer) —
  /// used by the result exporters and their tests.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  // out_ may point at our own file_, so moving/copying would leave it
  // dangling or aliased.
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; must match the header arity.
  void add_row(const std::vector<std::string>& row);

  /// True when the underlying stream is healthy.
  bool ok() const { return static_cast<bool>(*out_); }

 private:
  void write_row(const std::vector<std::string>& row);

  std::ofstream file_;
  std::ostream* out_;
  std::size_t arity_;
};

}  // namespace sparsetrain
