#include "util/fp16.hpp"

#include <bit>
#include <cmath>

namespace sparsetrain {

std::uint16_t float_to_half_bits(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((f >> 23) & 0xffu) - 127 + 15;
  std::uint32_t mantissa = f & 0x007fffffu;

  if (((f >> 23) & 0xffu) == 0xffu) {
    // Inf / NaN.
    const std::uint32_t nan_payload = mantissa ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | nan_payload);
  }
  if (exponent >= 0x1f) {
    // Overflow → infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (exponent <= 0) {
    // Subnormal or underflow to zero.
    if (exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x00800000u;  // implicit leading 1
    const int shift = 14 - exponent;
    std::uint32_t rounded = mantissa >> shift;
    // Round to nearest even.
    const std::uint32_t remainder = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (remainder > halfway || (remainder == halfway && (rounded & 1u)))
      ++rounded;
    return static_cast<std::uint16_t>(sign | rounded);
  }

  // Normal number: round the 23-bit mantissa to 10 bits, ties to even.
  std::uint32_t half = (static_cast<std::uint32_t>(exponent) << 10) |
                       (mantissa >> 13);
  const std::uint32_t remainder = mantissa & 0x1fffu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half & 1u))) ++half;
  return static_cast<std::uint16_t>(sign | half);
}

float half_bits_to_float(std::uint16_t bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u)
                             << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1fu;
  const std::uint32_t mantissa = bits & 0x3ffu;

  std::uint32_t f;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal: normalise.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x3ffu) << 13);
    }
  } else if (exponent == 0x1f) {
    f = sign | 0x7f800000u | (mantissa << 13);  // Inf / NaN
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

float quantize_half_inplace(std::span<float> values) {
  float worst = 0.0f;
  for (float& v : values) {
    const float q = quantize_half(v);
    worst = std::max(worst, std::abs(q - v));
    v = q;
  }
  return worst;
}

}  // namespace sparsetrain
