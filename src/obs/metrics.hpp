// Process-wide metrics registry.
//
// One obs::Registry per process (the daemons each own one) hands out
// stable references to named, labeled instruments:
//
//  * Counter — monotonically increasing 64-bit count (atomic add).
//  * Gauge — last-written double (atomic store), for sampled state like
//    resident store bytes or shard health.
//  * Histogram — fixed-bucket log-scale latency histogram. All
//    histograms share one static bound table (half-octave steps from
//    1 µs to ~47 s), so p50/p90/p99 are derivable from the bins of any
//    snapshot and two processes' histograms can be merged bin-wise.
//
// Recording is lock-cheap: instrument handles are resolved once (a
// mutex-guarded map lookup) and then recorded through relaxed atomics —
// the request hot path never takes the registry lock. Snapshots render
// the whole registry either as one versioned JSON document
// ("sparsetrain.metrics/v1") or as Prometheus text exposition, both
// deterministic (instruments sorted by name, then labels).
//
// The ad-hoc counter structs this replaces (Server::Counters,
// Router::Stats, Client::Stats, StoreStats, ProgramCache::Stats) survive
// as *views*: their owners now keep Counter handles and assemble the old
// structs from handle values, so a "stats" response and a "metrics"
// response can never disagree.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sparsetrain::obs {

/// Label set of one instrument, e.g. {{"shard", "127.0.0.1:7117"}}.
/// Order-insensitive: the registry canonicalises by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-scale latency histogram in seconds. Bin 0 is the underflow bucket
/// (v <= bounds[0] = 1 µs), bin i covers (bounds[i-1], bounds[i]], and
/// the last bin is the overflow bucket (v > bounds.back() ≈ 47 s). With
/// half-octave bounds any quantile interpolated from the bins is within
/// a factor of sqrt(2) of the true value (exact at bin edges).
class Histogram {
 public:
  static constexpr std::size_t kBounds = 52;
  static constexpr std::size_t kBins = kBounds + 1;

  /// bounds[i] = 1e-6 * 2^(i/2) seconds, shared by every histogram.
  static const std::array<double, kBounds>& bounds();

  void record(double seconds);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  struct Snapshot {
    std::array<std::uint64_t, kBins> bins{};
    std::uint64_t count = 0;
    double sum_seconds = 0.0;

    /// Quantile estimate by linear interpolation inside the owning bin;
    /// the overflow bin answers with the largest bound (conservative).
    /// q outside [0, 1] is clamped; an empty histogram answers 0.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBins> bins_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Resolve-or-create. The returned reference is stable for the
  /// registry's lifetime; calling again with the same (name, labels)
  /// returns the same instrument. Throws ContractError when `name` is
  /// already registered as a different kind.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// One-line "sparsetrain.metrics/v1" JSON document. The histogram
  /// bound table appears once at the top level; each histogram carries
  /// its bins plus derived p50/p90/p99.
  std::string json() const;

  /// Prometheus text exposition (counters as `_total` values as named,
  /// histograms as cumulative `_bucket{le=...}` + `_sum`/`_count`).
  std::string prometheus() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    Labels labels;  ///< sorted by key
    Kind kind = Kind::Counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& resolve(const std::string& name, const Labels& labels, Kind kind);

  mutable std::mutex mu_;
  /// Keyed by name + canonical labels: iteration order is the export
  /// order, so snapshots are deterministic.
  std::map<std::string, Entry> entries_;
};

}  // namespace sparsetrain::obs
