#include "obs/engine_profiler.hpp"

#include <cstring>

namespace sparsetrain::obs {

namespace {

const char* const kKnownStages[] = {"forward", "gta", "gtw", "fc"};

}  // namespace

EngineProfiler::EngineProfiler(Registry& registry) : registry_(&registry) {
  auto bind = [&](StageHandles& h, const char* stage) {
    const Labels labels = {{"stage", stage}};
    h.stage = stage;
    h.seconds = &registry.histogram("engine_stage_seconds", labels);
    h.tasks = &registry.counter("engine_stage_tasks_total", labels);
    h.row_ops = &registry.counter("engine_stage_row_ops_total", labels);
    h.tiles = &registry.counter("engine_stage_tiles_total", labels);
  };
  for (std::size_t i = 0; i < kStages; ++i) {
    bind(stages_[i], kKnownStages[i]);
  }
  bind(other_, "other");
}

EngineProfiler::StageHandles& EngineProfiler::handles_for(
    const char* stage) noexcept {
  for (std::size_t i = 0; i < kStages; ++i) {
    if (std::strcmp(stages_[i].stage, stage) == 0) return stages_[i];
  }
  return other_;
}

void EngineProfiler::record_stage(const char* stage, double seconds,
                                  std::uint64_t tasks, std::uint64_t row_ops,
                                  std::uint64_t tiles) noexcept {
  StageHandles& h = handles_for(stage);
  h.seconds->record(seconds);
  h.tasks->inc(tasks);
  h.row_ops->inc(row_ops);
  h.tiles->inc(tiles);
}

}  // namespace sparsetrain::obs
