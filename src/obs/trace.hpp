// Request tracing across the serving tier.
//
// A trace is born at the edge (the router, the daemon when spoken to
// directly, or a client) as a 64-bit trace id plus a sampling decision,
// and rides the NDJSON protocol as optional "trace"/"span" hex fields.
// Every hop and phase a request crosses — router forward / failover /
// replicate, daemon queue wait, store lookup, compile, simulate, store
// publish — records a Span; finished spans append one JSON line to the
// process's trace log, so one slow request is reconstructable by
// grepping three processes' logs for its trace id and stitching the
// span tree by parent ids.
//
// Sampling is decided once, at the edge, deterministically:
// mix64(seed, trace_id) against a threshold derived from the sample
// rate — two tracers with the same seed sample the same traces. A
// downstream process never re-rolls the dice: the presence of a trace
// id on the wire *is* the decision (the edge only propagates ids for
// sampled traces), so a span chain is always complete or absent, never
// partial.
//
// Cost discipline: a Span built from an inactive context (no tracer,
// unsampled, or zero trace id) does nothing — no clock reads, no
// allocation — so tracing compiled in but disabled is free on the
// request path and invisible to the engine's zero-allocation hot path
// (which is never instrumented with spans at all; see
// sim/profile_hook.hpp for the engine's separate registry-only hooks).
//
// Log record (one line per finished span):
//   {"trace":"<hex16>","span":"<hex16>","parent":"<hex16>",
//    "name":"daemon.simulate","process":"serve","pid":1234,
//    "start_us":<unix micros>,"dur_us":<int>,"attrs":{"k":"v",...}}
// "parent" is omitted for root spans; durations come from the steady
// clock (non-negative), start stamps from the system clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <atomic>
#include <string>
#include <utility>
#include <vector>

namespace sparsetrain::obs {

class Tracer;

/// Where a new span attaches: the trace it belongs to and the span that
/// becomes its parent (0 = root). Cheap to copy; inert when
/// !active().
struct SpanContext {
  Tracer* tracer = nullptr;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< parent for spans built from this context
  bool sampled = false;

  bool active() const {
    return tracer != nullptr && sampled && trace_id != 0;
  }
};

struct TracerOptions {
  /// JSONL output path (appended; shared across restarts). Empty =
  /// tracing disabled: every context is inactive.
  std::string path;
  /// Fraction of edge-started traces that are sampled, in [0, 1].
  double sample_rate = 0.0;
  /// Seed of both the trace-id sequence and the sampling decision —
  /// fixed seed + fixed request order = identical ids and decisions.
  std::uint64_t seed = 1;
  /// Recorded in every span ("router", "serve", ...), so merged logs
  /// say which process emitted what.
  std::string process = "sparsetrain";
};

class Tracer {
 public:
  explicit Tracer(TracerOptions opts);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// False when no log could be opened (tracing off).
  bool enabled() const { return out_ != nullptr; }

  /// The deterministic sampling decision for a trace id.
  bool sample(std::uint64_t trace_id) const;

  /// Edge entry point: mints the next trace id and decides sampling.
  SpanContext start_trace();

  /// Wire entry point: adopts an incoming (trace, parent span) pair. A
  /// zero trace id yields an inactive context; a nonzero one is sampled
  /// by definition (the edge only propagates sampled traces).
  SpanContext join(std::uint64_t trace_id, std::uint64_t parent_span);

  /// Fresh span id within `trace_id` (never 0). Salted per tracer
  /// instance (pid + an instance counter), so spans minted by different
  /// processes — or different tracers in one test binary — for the same
  /// trace cannot collide. Trace ids and sampling stay seed-
  /// deterministic; span ids only promise uniqueness.
  std::uint64_t next_id(std::uint64_t trace_id);

  /// Appends one span line (thread-safe, flushed per line so concurrent
  /// processes' logs are complete whenever read).
  void emit(std::uint64_t trace_id, std::uint64_t span_id,
            std::uint64_t parent_id, const char* name,
            std::int64_t start_us, std::int64_t dur_us,
            const std::vector<std::pair<std::string, std::string>>& attrs);

 private:
  TracerOptions opts_;
  std::uint64_t threshold_ = 0;  ///< sample iff mix < threshold_ (or rate>=1)
  bool always_ = false;
  std::FILE* out_ = nullptr;
  int pid_ = 0;
  std::uint64_t span_salt_ = 0;  ///< per-instance span-id discriminator
  std::mutex mu_;
  std::atomic<std::uint64_t> next_{1};
};

/// Scoped span: stamps the clocks at construction, emits at finish() or
/// destruction. Built from an inactive context it is a complete no-op.
class Span {
 public:
  Span() = default;
  /// Starts now.
  Span(const SpanContext& parent, const char* name);
  /// Starts retroactively at `start` (steady clock) — for phases that
  /// began before the span could be constructed, e.g. queue wait
  /// measured from admission.
  Span(const SpanContext& parent, const char* name,
       std::chrono::steady_clock::time_point start);
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return tracer_ != nullptr; }

  /// Attaches a key/value to the emitted record (no-op when inactive).
  void attr(const char* key, std::string value);

  /// Context for child spans (parent = this span). Inactive spans hand
  /// out inactive contexts, so whole subtrees switch off together.
  SpanContext context() const;

  /// Emits the record; idempotent.
  void finish();

 private:
  void start(const SpanContext& parent, const char* name,
             std::chrono::steady_clock::time_point steady_start);

  Tracer* tracer_ = nullptr;
  std::uint64_t trace_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  const char* name_ = "";
  std::int64_t start_us_ = 0;
  std::chrono::steady_clock::time_point steady_start_{};
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace sparsetrain::obs
