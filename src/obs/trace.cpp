#include "obs/trace.hpp"

#include <cmath>
#include <cstring>

#include "util/hash.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace sparsetrain::obs {

namespace {

void hex16(std::uint64_t v, char out[17]) {
  static const char digits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[v & 0xf];
    v >>= 4;
  }
  out[16] = '\0';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer(TracerOptions opts) : opts_(std::move(opts)) {
  const double rate = opts_.sample_rate;
  if (rate >= 1.0) {
    always_ = true;
  } else if (rate > 0.0) {
    // sample iff mix64(seed, id) < rate * 2^64; computed via ldexp to
    // keep the full 64-bit range without overflow at rate -> 1.
    threshold_ = static_cast<std::uint64_t>(std::ldexp(rate, 64));
  }
  if (!opts_.path.empty()) {
    out_ = std::fopen(opts_.path.c_str(), "a");
  }
#ifdef _WIN32
  pid_ = _getpid();
#else
  pid_ = static_cast<int>(getpid());
#endif
  // Span-id salt: distinct per process (pid) and per tracer instance
  // (counter), so concurrent emitters for one trace never mint the same
  // span id even when they share seed and counter sequence.
  static std::atomic<std::uint64_t> instances{0};
  span_salt_ = mix64(static_cast<std::uint64_t>(pid_),
                     instances.fetch_add(1) + fnv1a(opts_.process));
}

Tracer::~Tracer() {
  if (out_ != nullptr) std::fclose(out_);
}

bool Tracer::sample(std::uint64_t trace_id) const {
  if (always_) return true;
  if (threshold_ == 0) return false;
  return mix64(opts_.seed, trace_id) < threshold_;
}

SpanContext Tracer::start_trace() {
  SpanContext ctx;
  ctx.tracer = this;
  std::uint64_t id =
      mix64(opts_.seed, next_.fetch_add(1, std::memory_order_relaxed));
  if (id == 0) id = 1;  // 0 means "no trace" on the wire
  ctx.trace_id = id;
  ctx.span_id = 0;  // root
  ctx.sampled = enabled() && sample(id);
  return ctx;
}

SpanContext Tracer::join(std::uint64_t trace_id, std::uint64_t parent_span) {
  SpanContext ctx;
  ctx.tracer = this;
  ctx.trace_id = trace_id;
  ctx.span_id = parent_span;
  // A trace id on the wire is itself the sampling decision: the edge
  // only propagates ids for traces it sampled.
  ctx.sampled = enabled() && trace_id != 0;
  return ctx;
}

std::uint64_t Tracer::next_id(std::uint64_t trace_id) {
  std::uint64_t id =
      mix64(trace_id ^ span_salt_,
            next_.fetch_add(1, std::memory_order_relaxed));
  if (id == 0) id = 1;
  return id;
}

void Tracer::emit(
    std::uint64_t trace_id, std::uint64_t span_id, std::uint64_t parent_id,
    const char* name, std::int64_t start_us, std::int64_t dur_us,
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  if (out_ == nullptr) return;
  char trace_hex[17];
  char span_hex[17];
  char parent_hex[17];
  hex16(trace_id, trace_hex);
  hex16(span_id, span_hex);
  std::string line = "{\"trace\": \"";
  line += trace_hex;
  line += "\", \"span\": \"";
  line += span_hex;
  line += '"';
  if (parent_id != 0) {
    hex16(parent_id, parent_hex);
    line += ", \"parent\": \"";
    line += parent_hex;
    line += '"';
  }
  line += ", \"name\": \"";
  line += json_escape(name);
  line += "\", \"process\": \"";
  line += json_escape(opts_.process);
  line += "\", \"pid\": ";
  line += std::to_string(pid_);
  line += ", \"start_us\": ";
  line += std::to_string(start_us);
  line += ", \"dur_us\": ";
  line += std::to_string(dur_us < 0 ? 0 : dur_us);
  if (!attrs.empty()) {
    line += ", \"attrs\": {";
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) line += ", ";
      line += '"';
      line += json_escape(attrs[i].first);
      line += "\": \"";
      line += json_escape(attrs[i].second);
      line += '"';
    }
    line += '}';
  }
  line += "}\n";
  std::lock_guard lock(mu_);
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
}

Span::Span(const SpanContext& parent, const char* name) {
  if (!parent.active()) return;
  start(parent, name, std::chrono::steady_clock::now());
}

Span::Span(const SpanContext& parent, const char* name,
           std::chrono::steady_clock::time_point start_at) {
  if (!parent.active()) return;
  start(parent, name, start_at);
}

void Span::start(const SpanContext& parent, const char* name,
                 std::chrono::steady_clock::time_point steady_start) {
  tracer_ = parent.tracer;
  trace_ = parent.trace_id;
  parent_ = parent.span_id;
  id_ = tracer_->next_id(trace_);
  name_ = name;
  steady_start_ = steady_start;
  // Wall stamp back-computed from the steady start so retroactive spans
  // (queue wait measured from admission) line up with their children.
  const auto steady_now = std::chrono::steady_clock::now();
  const std::int64_t elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(steady_now -
                                                            steady_start)
          .count();
  start_us_ = wall_now_us() - elapsed_us;
}

void Span::attr(const char* key, std::string value) {
  if (tracer_ == nullptr) return;
  attrs_.emplace_back(key, std::move(value));
}

SpanContext Span::context() const {
  SpanContext ctx;
  if (tracer_ == nullptr) return ctx;  // inactive subtree
  ctx.tracer = tracer_;
  ctx.trace_id = trace_;
  ctx.span_id = id_;
  ctx.sampled = true;
  return ctx;
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const std::int64_t dur_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                            steady_start_)
          .count();
  tracer_->emit(trace_, id_, parent_, name_, start_us_, dur_us, attrs_);
  tracer_ = nullptr;
}

}  // namespace sparsetrain::obs
