// Registry-backed implementation of the exact engine's profiling seam.
//
// Pre-resolves one handle set per known stage at construction, so
// record_stage() on the engine's completion path is handle lookups by
// strcmp plus relaxed atomic adds — no registry lock, no allocation.
#pragma once

#include "obs/metrics.hpp"
#include "sim/profile_hook.hpp"

namespace sparsetrain::obs {

class EngineProfiler final : public sim::ExactProfiler {
 public:
  explicit EngineProfiler(Registry& registry);

  void record_stage(const char* stage, double seconds, std::uint64_t tasks,
                    std::uint64_t row_ops, std::uint64_t tiles)
      noexcept override;

 private:
  struct StageHandles {
    const char* stage = nullptr;
    Histogram* seconds = nullptr;
    Counter* tasks = nullptr;
    Counter* row_ops = nullptr;
    Counter* tiles = nullptr;
  };
  static constexpr std::size_t kStages = 4;

  StageHandles& handles_for(const char* stage) noexcept;

  Registry* registry_;
  StageHandles stages_[kStages];
  StageHandles other_;  ///< fallback bucket for stages named later
};

}  // namespace sparsetrain::obs
