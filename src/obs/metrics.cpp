#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/require.hpp"

namespace sparsetrain::obs {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus label values escape \ " and newline only.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

Labels canonical(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string label_suffix(const Labels& sorted) {
  if (sorted.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first + "=\"" + prom_escape(sorted[i].second) + '"';
  }
  out += '}';
  return out;
}

void json_labels(std::ostringstream& os, const Labels& sorted) {
  os << '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << json_escape(sorted[i].first) << "\": \""
       << json_escape(sorted[i].second) << '"';
  }
  os << '}';
}

}  // namespace

const std::array<double, Histogram::kBounds>& Histogram::bounds() {
  static const std::array<double, kBounds> table = [] {
    std::array<double, kBounds> b{};
    for (std::size_t i = 0; i < kBounds; ++i) {
      b[i] = 1e-6 * std::pow(2.0, static_cast<double>(i) / 2.0);
    }
    return b;
  }();
  return table;
}

void Histogram::record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN/negative clamp to underflow
  const auto& b = bounds();
  const std::size_t bin = static_cast<std::size_t>(
      std::lower_bound(b.begin(), b.end(), seconds) - b.begin());
  bins_[bin].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                    std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  for (std::size_t i = 0; i < kBins; ++i) {
    s.bins[i] = bins_[i].load(std::memory_order_relaxed);
  }
  // Recompute the total from the bins, not count_: a snapshot taken
  // mid-record must stay internally consistent (quantile walks the bins).
  s.count = 0;
  for (const std::uint64_t c : s.bins) s.count += c;
  s.sum_seconds =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

void Histogram::reset() {
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto& b = bounds();
  // Rank of the target observation, 1-based: ceil(q * count), at least 1.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBins; ++i) {
    if (bins[i] == 0) continue;
    const std::uint64_t next = cum + bins[i];
    if (rank <= next) {
      if (i == kBins - 1) return b.back();  // overflow: conservative
      const double lo = i == 0 ? 0.0 : b[i - 1];
      const double hi = b[i];
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(bins[i]);
      return lo + (hi - lo) * frac;
    }
    cum = next;
  }
  return b.back();
}

Registry::Entry& Registry::resolve(const std::string& name,
                                   const Labels& labels, Kind kind) {
  const Labels sorted = canonical(labels);
  std::string key = name;
  for (const auto& [k, v] : sorted) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  std::lock_guard lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.name = name;
    e.labels = sorted;
    e.kind = kind;
    switch (kind) {
      case Kind::Counter: e.counter = std::make_unique<Counter>(); break;
      case Kind::Gauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::move(key), std::move(e)).first;
  }
  ST_REQUIRE(it->second.kind == kind,
             "metrics: '" + name + "' already registered as another kind");
  return it->second;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  return *resolve(name, labels, Kind::Counter).counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  return *resolve(name, labels, Kind::Gauge).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const Labels& labels) {
  return *resolve(name, labels, Kind::Histogram).histogram;
}

std::string Registry::json() const {
  std::ostringstream os;
  os.precision(10);
  os << "{\"schema\": \"sparsetrain.metrics/v1\", \"histogram_bounds\": [";
  const auto& b = Histogram::bounds();
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i > 0) os << ", ";
    os << num(b[i]);
  }
  os << "], \"metrics\": [";
  std::lock_guard lock(mu_);
  bool first = true;
  for (const auto& [key, e] : entries_) {
    (void)key;
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << json_escape(e.name) << "\", \"labels\": ";
    json_labels(os, e.labels);
    switch (e.kind) {
      case Kind::Counter:
        os << ", \"kind\": \"counter\", \"value\": " << e.counter->value();
        break;
      case Kind::Gauge:
        os << ", \"kind\": \"gauge\", \"value\": " << num(e.gauge->value());
        break;
      case Kind::Histogram: {
        const Histogram::Snapshot s = e.histogram->snapshot();
        os << ", \"kind\": \"histogram\", \"count\": " << s.count
           << ", \"sum_seconds\": " << num(s.sum_seconds)
           << ", \"p50\": " << num(s.quantile(0.50))
           << ", \"p90\": " << num(s.quantile(0.90))
           << ", \"p99\": " << num(s.quantile(0.99)) << ", \"bins\": [";
        for (std::size_t i = 0; i < s.bins.size(); ++i) {
          if (i > 0) os << ", ";
          os << s.bins[i];
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string Registry::prometheus() const {
  std::ostringstream os;
  os.precision(10);
  std::lock_guard lock(mu_);
  std::string last_typed;
  for (const auto& [key, e] : entries_) {
    (void)key;
    const char* type = e.kind == Kind::Counter ? "counter"
                       : e.kind == Kind::Gauge ? "gauge"
                                               : "histogram";
    if (last_typed != e.name) {
      os << "# TYPE " << e.name << ' ' << type << '\n';
      last_typed = e.name;
    }
    const std::string suffix = label_suffix(e.labels);
    switch (e.kind) {
      case Kind::Counter:
        os << e.name << suffix << ' ' << e.counter->value() << '\n';
        break;
      case Kind::Gauge:
        os << e.name << suffix << ' ' << num(e.gauge->value()) << '\n';
        break;
      case Kind::Histogram: {
        const Histogram::Snapshot s = e.histogram->snapshot();
        const auto& b = Histogram::bounds();
        // Cumulative buckets, Prometheus style; the shared bound table
        // means every histogram exports the same `le` series.
        Labels with_le = e.labels;
        with_le.emplace_back("le", "");
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < b.size(); ++i) {
          cum += s.bins[i];
          with_le.back().second = num(b[i]);
          os << e.name << "_bucket" << label_suffix(with_le) << ' ' << cum
             << '\n';
        }
        with_le.back().second = "+Inf";
        os << e.name << "_bucket" << label_suffix(with_le) << ' ' << s.count
           << '\n';
        os << e.name << "_sum" << suffix << ' ' << num(s.sum_seconds)
           << '\n';
        os << e.name << "_count" << suffix << ' ' << s.count << '\n';
        break;
      }
    }
  }
  return os.str();
}

}  // namespace sparsetrain::obs
