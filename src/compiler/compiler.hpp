// Compiler: network description + sparsity profile → instruction program.
//
// This plays the role of the paper's Python compiler that converted PyTorch
// models into the accelerator's internal instructions. For every conv (or
// FC-as-conv) layer it emits the three training stages:
//   Forward  — SRC blocks over the input activations,
//   GTA      — MSRC blocks over dO with the layer's input-side ReLU mask
//              (skipped for the first layer, which needs no dI), and
//   GTW      — OSRC blocks pairing dO with I.
#pragma once

#include "isa/instruction.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::compiler {

struct CompileOptions {
  std::size_t batch = 1;       ///< samples per iteration
  bool forward = true;
  bool gta = true;
  bool gtw = true;
  /// Engine the program targets. The instruction stream is identical
  /// either way; the choice is recorded as Program metadata (and keys the
  /// ProgramCache) so backends dispatch statistical vs exact execution
  /// from the program alone.
  isa::EngineKind engine = isa::EngineKind::Statistical;
};

/// Lowers `net` with operand densities from `profile` (must have one entry
/// per layer) into an executable Program.
isa::Program compile(const workload::NetworkConfig& net,
                     const workload::SparsityProfile& profile,
                     const CompileOptions& options = {});

}  // namespace sparsetrain::compiler
