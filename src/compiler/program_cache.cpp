#include "compiler/program_cache.hpp"

#include <bit>
#include <sstream>

#include "util/hash.hpp"
#include "util/require.hpp"

namespace sparsetrain::compiler {

namespace {

void put_double(std::ostringstream& os, double v) {
  // Bit pattern, so 0.8999999 and 0.9 never collide and -0.0/NaN payloads
  // stay distinct.
  os << std::bit_cast<std::uint64_t>(v) << ';';
}

void put_name(std::ostringstream& os, const std::string& name) {
  // Length-prefixed, so names containing the separator characters cannot
  // make two distinct inputs collide on one key.
  os << name.size() << ':' << name << ';';
}

}  // namespace

std::string ProgramCache::key(const workload::NetworkConfig& net,
                              const workload::SparsityProfile& profile,
                              const CompileOptions& options) {
  ST_REQUIRE(profile.size() == net.layers.size(),
             "profile does not match network");
  std::ostringstream os;
  os << "net=";
  put_name(os, net.name);
  for (const auto& l : net.layers) {
    put_name(os, l.name);
    os << l.in_channels << ',' << l.in_h << ',' << l.in_w << ','
       << l.out_channels << ',' << l.kernel << ',' << l.stride << ','
       << l.padding << ',' << l.has_bn << l.relu_after << l.first_layer
       << l.is_fc << ';';
  }
  os << "profile=";
  put_name(os, profile.name());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const auto& d = profile.layer(i);
    put_double(os, d.input_acts);
    put_double(os, d.output_grads);
    put_double(os, d.mask);
  }
  os << "opts=" << options.batch << ',' << options.forward << options.gta
     << options.gtw << ',' << static_cast<int>(options.engine);
  return os.str();
}

std::uint64_t ProgramCache::fingerprint(const workload::NetworkConfig& net,
                                        const workload::SparsityProfile& profile,
                                        const CompileOptions& options) {
  return fnv1a(key(net, profile, options));
}

ProgramCache::ProgramPtr ProgramCache::get(
    const workload::NetworkConfig& net,
    const workload::SparsityProfile& profile, const CompileOptions& options) {
  std::string k = key(net, profile, options);
  std::promise<ProgramPtr> promise;
  std::shared_future<ProgramPtr> hit;
  {
    std::lock_guard lock(mu_);
    const auto it = cache_.find(k);
    if (it != cache_.end()) {
      hits_->inc();
      hit = it->second;
    } else {
      misses_->inc();
      cache_.emplace(k, promise.get_future().share());
    }
  }
  // A hit may still block (outside the lock) until the in-flight compile
  // finishes; only one worker ever compiles a key.
  if (hit.valid()) return hit.get();
  // We won the key: compile outside the lock while other workers wait on
  // the shared future.
  try {
    auto program =
        std::make_shared<const isa::Program>(compile(net, profile, options));
    promise.set_value(program);
    return program;
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard lock(mu_);
    cache_.erase(k);  // let a later request retry (waiters see the error)
    throw;
  }
}

void ProgramCache::bind_metrics(obs::Registry& registry) {
  std::lock_guard lock(mu_);
  hits_ = &registry.counter("program_cache_hits_total");
  misses_ = &registry.counter("program_cache_misses_total");
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.hits = hits_->value();
  s.misses = misses_->value();
  return s;
}

std::size_t ProgramCache::size() const {
  std::lock_guard lock(mu_);
  return cache_.size();
}

void ProgramCache::reset_stats() {
  std::lock_guard lock(mu_);
  hits_->reset();
  misses_->reset();
}

void ProgramCache::clear() {
  std::lock_guard lock(mu_);
  cache_.clear();
  hits_->reset();
  misses_->reset();
}

}  // namespace sparsetrain::compiler
