// Memoised compilation.
//
// Compiled Programs depend only on (network geometry, per-layer operand
// densities, compile options) — not on the architecture that will run
// them — so a sweep that evaluates one workload on many backends, or many
// pruning rates on the same dense baseline, needs far fewer compiles than
// jobs. The cache key is a canonical serialisation of every field the
// compiler reads; equal inputs return the *same* immutable Program.
//
// get() is thread-safe (Session pool workers resolve programs
// concurrently) and single-flight: the first worker to request a key
// compiles it (outside the lock) while later requesters block on the
// shared future — so misses == compile() calls exactly, on any core
// count.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "compiler/compiler.hpp"
#include "obs/metrics.hpp"

namespace sparsetrain::compiler {

class ProgramCache {
 public:
  using ProgramPtr = std::shared_ptr<const isa::Program>;

  /// View over the hit/miss counters (private obs::Counter instances by
  /// default, registry instruments after bind_metrics) — so a "stats"
  /// response and a "metrics" response can never disagree.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;  ///< == number of compile() calls
    std::size_t lookups() const { return hits + misses; }
  };

  /// Re-homes the counters onto `registry` (program_cache_hits_total /
  /// program_cache_misses_total). Call before the first get(): counts
  /// accumulated on the private counters do not transfer.
  void bind_metrics(obs::Registry& registry);

  /// Returns the cached program for (net, profile, options), compiling on
  /// first use.
  ProgramPtr get(const workload::NetworkConfig& net,
                 const workload::SparsityProfile& profile,
                 const CompileOptions& options = {});

  /// Canonical cache key: serialises every compiler input bit-exactly
  /// (densities as IEEE-754 bit patterns, not rounded decimals).
  static std::string key(const workload::NetworkConfig& net,
                         const workload::SparsityProfile& profile,
                         const CompileOptions& options = {});

  /// 64-bit FNV-1a of key() — a compact fingerprint for logging.
  static std::uint64_t fingerprint(const workload::NetworkConfig& net,
                                   const workload::SparsityProfile& profile,
                                   const CompileOptions& options = {});

  Stats stats() const;

  /// Atomic counter snapshot — the canonical way services export the
  /// hit/miss numbers (identical to stats(); named for symmetry with
  /// reset_stats()).
  Stats snapshot() const { return stats(); }

  /// Zeroes the counters without dropping any compiled program, so a
  /// long-lived service can report per-window rates while keeping its
  /// warm cache.
  void reset_stats();

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  /// Futures, not plain pointers: an in-flight compile is visible to
  /// other workers immediately, so the same key never compiles twice.
  std::unordered_map<std::string, std::shared_future<ProgramPtr>> cache_;
  /// Fallback instruments used until (unless) bind_metrics is called.
  obs::Counter own_hits_;
  obs::Counter own_misses_;
  obs::Counter* hits_ = &own_hits_;
  obs::Counter* misses_ = &own_misses_;
};

}  // namespace sparsetrain::compiler
