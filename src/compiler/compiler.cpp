#include "compiler/compiler.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace sparsetrain::compiler {

using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::RowBlock;
using isa::RowOpKind;
using isa::Stage;
using workload::LayerConfig;

namespace {

Instruction config(std::size_t layer, Stage stage) {
  Instruction inst;
  inst.op = Opcode::ConfigLayer;
  inst.layer_index = layer;
  inst.stage = stage;
  return inst;
}

Instruction load_weights(std::size_t layer, Stage stage,
                         const LayerConfig& l) {
  Instruction inst;
  inst.op = Opcode::LoadWeights;
  inst.layer_index = layer;
  inst.stage = stage;
  inst.elements = l.out_channels * l.in_channels * l.kernel * l.kernel;
  return inst;
}

Instruction barrier(std::size_t layer, Stage stage) {
  Instruction inst;
  inst.op = Opcode::Barrier;
  inst.layer_index = layer;
  inst.stage = stage;
  return inst;
}

Instruction store(std::size_t layer, Stage stage, std::size_t elements,
                  double density) {
  Instruction inst;
  inst.op = Opcode::StoreOutputs;
  inst.layer_index = layer;
  inst.stage = stage;
  inst.elements = elements;
  inst.store_density = density;
  return inst;
}

/// Lanes per PE for the FC dot-product mapping (Reg-2 accumulator width).
constexpr std::size_t kFcLanes = 4;

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Emits the three stages of a fully-connected layer using the FC
/// dot-product row op. Each task streams the compressed operand vector
/// once and feeds `kFcLanes` output accumulators; task counts already
/// reflect lane packing of the useful outputs (masked dI and zero dO
/// lanes are never scheduled).
void emit_fc(Program& prog, std::size_t li, const LayerConfig& l,
             const workload::LayerDensities& d, const CompileOptions& o) {
  const std::size_t C = l.in_channels;
  const std::size_t F = l.out_channels;

  auto run = [&](Stage stage, std::size_t tasks, std::size_t in_len,
                 double density_in) {
    Instruction inst;
    inst.op = Opcode::Run;
    inst.layer_index = li;
    inst.stage = stage;
    RowBlock& b = inst.block;
    b.kind = RowOpKind::FC;
    b.tasks = std::max<std::size_t>(1, tasks);
    b.ops_per_task = 1;
    b.in_len = in_len;
    b.out_len = kFcLanes;
    b.kernel = 1;
    b.density_in = density_in;
    b.fc_lanes = kFcLanes;
    prog.instructions.push_back(inst);
  };

  if (o.forward) {
    prog.instructions.push_back(config(li, Stage::Forward));
    prog.instructions.push_back(load_weights(li, Stage::Forward, l));
    run(Stage::Forward, o.batch * ceil_div(F, kFcLanes), C, d.input_acts);
    prog.instructions.push_back(store(li, Stage::Forward, o.batch * F,
                                      l.relu_after ? d.mask : 1.0));
    prog.instructions.push_back(barrier(li, Stage::Forward));
  }
  if (o.gta && !l.first_layer) {
    prog.instructions.push_back(config(li, Stage::GTA));
    prog.instructions.push_back(load_weights(li, Stage::GTA, l));
    // Only mask-allowed dI outputs are computed (lane packing).
    const auto useful = static_cast<std::size_t>(
        static_cast<double>(C) * d.mask + 0.5);
    run(Stage::GTA, o.batch * ceil_div(std::max<std::size_t>(1, useful),
                                       kFcLanes),
        F, d.output_grads);
    prog.instructions.push_back(store(li, Stage::GTA, o.batch * C, d.mask));
    prog.instructions.push_back(barrier(li, Stage::GTA));
  }
  if (o.gtw) {
    prog.instructions.push_back(config(li, Stage::GTW));
    // Outer product dW = dO·Iᵀ: lanes are packed with nonzero dO entries,
    // each task streams the compressed I vector once.
    const auto nnz_do = static_cast<std::size_t>(
        static_cast<double>(F) * d.output_grads + 0.5);
    run(Stage::GTW, o.batch * ceil_div(std::max<std::size_t>(1, nnz_do),
                                       kFcLanes),
        C, d.input_acts);
    prog.instructions.push_back(store(li, Stage::GTW, F * C, 1.0));
    prog.instructions.push_back(barrier(li, Stage::GTW));
  }
}

}  // namespace

Program compile(const workload::NetworkConfig& net,
                const workload::SparsityProfile& profile,
                const CompileOptions& options) {
  ST_REQUIRE(profile.size() == net.layers.size(),
             "profile/layer count mismatch for " + net.name);
  ST_REQUIRE(options.batch > 0, "batch must be positive");

  Program prog;
  prog.name = net.name + " [" + profile.name() + "]";
  prog.engine = options.engine;
  prog.batch = options.batch;

  for (std::size_t li = 0; li < net.layers.size(); ++li) {
    const LayerConfig& l = net.layers[li];
    const workload::LayerDensities& d = profile.layer(li);
    const std::size_t oh = l.out_h();
    const std::size_t ow = l.out_w();

    if (l.is_fc) {
      emit_fc(prog, li, l, d, options);
      continue;
    }

    if (options.forward) {
      prog.instructions.push_back(config(li, Stage::Forward));
      prog.instructions.push_back(load_weights(li, Stage::Forward, l));
      Instruction run;
      run.op = Opcode::Run;
      run.layer_index = li;
      run.stage = Stage::Forward;
      RowBlock& b = run.block;
      b.kind = RowOpKind::SRC;
      b.tasks = options.batch * l.out_channels * oh;
      b.ops_per_task = l.in_channels * l.kernel;
      b.in_len = l.in_w;
      b.out_len = ow;
      b.kernel = static_cast<std::uint32_t>(l.kernel);
      b.stride = static_cast<std::uint32_t>(l.stride);
      b.padding = static_cast<std::uint32_t>(l.padding);
      b.density_in = d.input_acts;
      prog.instructions.push_back(run);
      // Output activations: stored compressed at the post-ReLU density,
      // which is the mask density of this layer (its own input pattern is
      // the best stand-in for the activation density constant).
      prog.instructions.push_back(
          store(li, Stage::Forward, options.batch * l.out_channels * oh * ow,
                l.relu_after ? d.mask : 1.0));
      prog.instructions.push_back(barrier(li, Stage::Forward));
    }

    if (options.gta && !l.first_layer) {
      prog.instructions.push_back(config(li, Stage::GTA));
      prog.instructions.push_back(load_weights(li, Stage::GTA, l));
      Instruction run;
      run.op = Opcode::Run;
      run.layer_index = li;
      run.stage = Stage::GTA;
      RowBlock& b = run.block;
      b.kind = RowOpKind::MSRC;
      // One task per dI row; each consumes the dO rows that scatter into
      // it. Only the (oy, ky) pairs with oy·S + ky − P = iy land on a
      // given dI row — K·OH/H (≈ K/S) of the K taps on average, so the
      // expected op count, not F·K, keeps strided GTA from overcounting
      // row ops by ~S× (the exact engine is the ground truth here; see
      // tests/test_exact_agreement_matrix.cpp).
      b.tasks = options.batch * l.in_channels * l.in_h;
      b.ops_per_task = std::max<std::size_t>(
          1, (l.out_channels * l.kernel * oh + l.in_h / 2) / l.in_h);
      b.in_len = ow;        // the streamed operand is a dO row
      b.out_len = l.in_w;   // scattered into a dI row
      b.kernel = static_cast<std::uint32_t>(l.kernel);
      b.stride = static_cast<std::uint32_t>(l.stride);
      b.padding = static_cast<std::uint32_t>(l.padding);
      b.density_in = d.output_grads;
      b.density_mask = d.mask;  // forced zeros of the upstream ReLU
      prog.instructions.push_back(run);
      // dI leaves compressed at (at most) the mask density.
      prog.instructions.push_back(
          store(li, Stage::GTA, options.batch * l.in_channels * l.in_h * l.in_w,
                d.mask));
      prog.instructions.push_back(barrier(li, Stage::GTA));
    }

    if (options.gtw) {
      prog.instructions.push_back(config(li, Stage::GTW));
      Instruction run;
      run.op = Opcode::Run;
      run.layer_index = li;
      run.stage = Stage::GTW;
      RowBlock& b = run.block;
      b.kind = RowOpKind::OSRC;
      // One task per (f, c) kernel slice; each correlates the OH dO rows
      // of filter f with the matching I rows of channel c.
      b.tasks = options.batch * l.out_channels * l.in_channels;
      b.ops_per_task = oh * l.kernel;
      b.in_len = ow;  // streamed dO row
      b.out_len = l.kernel;
      b.second_len = l.in_w;  // the paired I row
      b.kernel = static_cast<std::uint32_t>(l.kernel);
      b.stride = static_cast<std::uint32_t>(l.stride);
      b.padding = static_cast<std::uint32_t>(l.padding);
      b.density_in = d.output_grads;
      b.density_second = d.input_acts;
      prog.instructions.push_back(run);
      // dW is dense and small (K²·C·F).
      prog.instructions.push_back(
          store(li, Stage::GTW,
                l.out_channels * l.in_channels * l.kernel * l.kernel, 1.0));
      prog.instructions.push_back(barrier(li, Stage::GTW));
    }
  }
  return prog;
}

}  // namespace sparsetrain::compiler
