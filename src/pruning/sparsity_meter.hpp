// Table I instrumentation: accumulates the densities of the six training
// operand types per conv layer across steps.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/conv2d.hpp"
#include "util/stats.hpp"

namespace sparsetrain::pruning {

/// Mean operand densities of one layer over the recorded steps.
struct LayerSparsitySummary {
  std::string layer;
  std::size_t steps = 0;
  double weights = 1.0;
  double weight_grads = 1.0;
  double input_acts = 1.0;
  double input_grads = 1.0;
  double output_acts = 1.0;
  double output_grads = 1.0;
};

/// SparsityProbe implementation shared by all convs of a network.
class SparsityMeter final : public nn::SparsityProbe {
 public:
  void record(const std::string& layer_name,
              const nn::ConvStepDensities& d) override;

  /// Per-layer summaries in first-recorded order.
  std::vector<LayerSparsitySummary> summaries() const;

  /// Summary aggregated over all layers and steps.
  LayerSparsitySummary overall() const;

  /// Attaches this meter to every conv reachable from `net`.
  static void attach(nn::Layer& net, const std::shared_ptr<SparsityMeter>& m);

 private:
  struct Acc {
    std::size_t order = 0;
    std::size_t steps = 0;
    RunningStats w, dw, i, di, o, do_;
  };
  std::map<std::string, Acc> layers_;
  std::size_t next_order_ = 0;
};

}  // namespace sparsetrain::pruning
