// Oracle (two-pass) gradient pruner — the scheme the FIFO prediction
// replaces (paper §III-B motivation).
//
// Pass 1 computes Σ|g| and determines this batch's exact threshold; pass 2
// prunes with it. In hardware this costs a second full sweep over the
// gradients (and the memory to hold them un-pruned in between), which is
// precisely the overhead the FIFO predictor avoids. Implemented as a
// reference policy so the ablation can show FIFO ≈ oracle in outcome.
#pragma once

#include <string>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace sparsetrain::pruning {

class OraclePruner final : public nn::GradientTransform {
 public:
  OraclePruner(double target_sparsity, Rng rng, std::string layer_name = "");

  void apply(Tensor& grad) override;

  double last_density() const { return last_density_; }
  double last_threshold() const { return last_threshold_; }
  std::size_t batches() const { return batches_; }

 private:
  double target_sparsity_;
  Rng rng_;
  std::string layer_name_;
  double last_density_ = 1.0;
  double last_threshold_ = 0.0;
  std::size_t batches_ = 0;
};

}  // namespace sparsetrain::pruning
