#include "pruning/fifo_predictor.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace sparsetrain::pruning {

ThresholdFifo::ThresholdFifo(std::size_t depth)
    : depth_(depth), slots_(depth, 0.0) {
  ST_REQUIRE(depth_ > 0, "FIFO depth must be positive");
}

void ThresholdFifo::push(double tau) {
  ST_REQUIRE(tau >= 0.0, "thresholds are non-negative");
  sum_ -= slots_[next_];
  slots_[next_] = tau;
  sum_ += tau;
  next_ = (next_ + 1) % depth_;
  ++count_;
}

double ThresholdFifo::predicted() const {
  const std::size_t stored_count = stored();
  if (stored_count == 0) return 0.0;
  return sum_ / static_cast<double>(stored_count);
}

}  // namespace sparsetrain::pruning
