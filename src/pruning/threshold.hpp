// Threshold determination (paper §III-B).
//
// Activation gradients are modelled as N(0, σ²). With E|g| = σ·√(2/π), an
// unbiased estimate from one pass is σ̂ = √(π/2)·(Σ|gᵢ|)/n. Pruning the
// fraction p of a half-normal needs P(|g| < τ) = p, i.e.
//     τ = σ̂ · Φ⁻¹((1+p)/2).
// (The paper prints Φ⁻¹((1−p)/2)·(1/n)√(2/π)·A, which differs by a sign and
// by the σ̂ scale factor; the form here matches ref. [23] and is validated
// by tests that check the realised pruning rate equals p.)
#pragma once

#include <span>

namespace sparsetrain::pruning {

/// Unbiased σ estimate from the accumulated Σ|gᵢ| statistic.
double estimate_sigma(double abs_sum, std::size_t n);

/// σ̂ over a gradient span in one pass.
double estimate_sigma(std::span<const float> g);

/// Pruning threshold for target sparsity p ∈ [0, 1) given σ̂.
/// p == 0 yields τ == 0 (prune nothing).
double determine_threshold(double sigma_hat, double target_sparsity);

/// Convenience: σ̂ and τ from raw data in one call.
double determine_threshold(std::span<const float> g, double target_sparsity);

}  // namespace sparsetrain::pruning
