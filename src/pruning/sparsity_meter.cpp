#include "pruning/sparsity_meter.hpp"

#include <algorithm>

namespace sparsetrain::pruning {

void SparsityMeter::record(const std::string& layer_name,
                           const nn::ConvStepDensities& d) {
  auto [it, inserted] = layers_.try_emplace(layer_name);
  if (inserted) it->second.order = next_order_++;
  Acc& acc = it->second;
  ++acc.steps;
  acc.w.add(d.weights);
  acc.dw.add(d.weight_grads);
  acc.i.add(d.input_acts);
  acc.di.add(d.input_grads);
  acc.o.add(d.output_acts);
  acc.do_.add(d.output_grads);
}

std::vector<LayerSparsitySummary> SparsityMeter::summaries() const {
  std::vector<const std::pair<const std::string, Acc>*> ordered;
  ordered.reserve(layers_.size());
  for (const auto& kv : layers_) ordered.push_back(&kv);
  std::sort(ordered.begin(), ordered.end(), [](auto* a, auto* b) {
    return a->second.order < b->second.order;
  });

  std::vector<LayerSparsitySummary> out;
  out.reserve(ordered.size());
  for (const auto* kv : ordered) {
    LayerSparsitySummary s;
    s.layer = kv->first;
    s.steps = kv->second.steps;
    s.weights = kv->second.w.mean();
    s.weight_grads = kv->second.dw.mean();
    s.input_acts = kv->second.i.mean();
    s.input_grads = kv->second.di.mean();
    s.output_acts = kv->second.o.mean();
    s.output_grads = kv->second.do_.mean();
    out.push_back(s);
  }
  return out;
}

LayerSparsitySummary SparsityMeter::overall() const {
  LayerSparsitySummary s;
  s.layer = "overall";
  RunningStats w, dw, i, di, o, do_;
  for (const auto& [name, acc] : layers_) {
    s.steps += acc.steps;
    w.merge(acc.w);
    dw.merge(acc.dw);
    i.merge(acc.i);
    di.merge(acc.di);
    o.merge(acc.o);
    do_.merge(acc.do_);
  }
  s.weights = w.count() ? w.mean() : 1.0;
  s.weight_grads = dw.count() ? dw.mean() : 1.0;
  s.input_acts = i.count() ? i.mean() : 1.0;
  s.input_grads = di.count() ? di.mean() : 1.0;
  s.output_acts = o.count() ? o.mean() : 1.0;
  s.output_grads = do_.count() ? do_.mean() : 1.0;
  return s;
}

void SparsityMeter::attach(nn::Layer& net,
                           const std::shared_ptr<SparsityMeter>& m) {
  net.for_each_conv([&](nn::Conv2D& conv) { conv.set_sparsity_probe(m); });
}

}  // namespace sparsetrain::pruning
