// Threshold prediction FIFO (paper §III-B, Fig. 5).
//
// Each CONV layer keeps a FIFO of the last N_F *determined* thresholds; the
// *predicted* threshold used for on-the-fly pruning of the current batch is
// their mean. No pruning happens until the FIFO has filled once — exactly
// Algorithm 1's "i > N_F" guard.
#pragma once

#include <cstddef>
#include <vector>

namespace sparsetrain::pruning {

class ThresholdFifo {
 public:
  explicit ThresholdFifo(std::size_t depth);

  /// Pushes a determined threshold, evicting the oldest once full.
  void push(double tau);

  /// True once N_F thresholds have been observed.
  bool ready() const { return count_ >= depth_; }

  /// Mean of the stored thresholds; 0 until the first push.
  double predicted() const;

  std::size_t depth() const { return depth_; }
  std::size_t stored() const { return std::min(count_, depth_); }

 private:
  std::size_t depth_;
  std::vector<double> slots_;
  std::size_t next_ = 0;   ///< ring-buffer write position
  std::size_t count_ = 0;  ///< total pushes ever
  double sum_ = 0.0;       ///< running sum of stored slots
};

}  // namespace sparsetrain::pruning
