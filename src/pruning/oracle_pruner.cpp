#include "pruning/oracle_pruner.hpp"

#include "pruning/stochastic_pruner.hpp"
#include "pruning/threshold.hpp"
#include "util/require.hpp"

namespace sparsetrain::pruning {

OraclePruner::OraclePruner(double target_sparsity, Rng rng,
                           std::string layer_name)
    : target_sparsity_(target_sparsity),
      rng_(rng),
      layer_name_(std::move(layer_name)) {
  ST_REQUIRE(target_sparsity_ >= 0.0 && target_sparsity_ < 1.0,
             "target sparsity must be in [0,1)");
}

void OraclePruner::apply(Tensor& grad) {
  auto g = grad.flat();
  ST_REQUIRE(!g.empty(), "cannot prune an empty gradient tensor");

  // Pass 1: exact threshold for THIS batch.
  last_threshold_ = determine_threshold(g, target_sparsity_);
  // Pass 2: prune.
  (void)stochastic_prune(g, last_threshold_, rng_);

  std::size_t nonzero = 0;
  for (float x : g)
    if (x != 0.0f) ++nonzero;
  last_density_ = static_cast<double>(nonzero) / static_cast<double>(g.size());
  ++batches_;
}

}  // namespace sparsetrain::pruning
