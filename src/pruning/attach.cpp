#include "pruning/attach.hpp"

#include "nn/conv2d.hpp"

namespace sparsetrain::pruning {

double AttachedPruners::mean_last_density() const {
  if (pruners.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& p : pruners) sum += p->last_density();
  return sum / static_cast<double>(pruners.size());
}

double AttachedPruners::mean_predicted_threshold() const {
  if (pruners.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : pruners) sum += p->last_predicted_threshold();
  return sum / static_cast<double>(pruners.size());
}

AttachedPruners attach_gradient_pruners(nn::Layer& net,
                                        const PruningConfig& cfg, Rng& rng,
                                        bool skip_first_conv) {
  AttachedPruners attached;
  bool first = true;
  net.for_each_conv_structure([&](nn::Conv2D& conv, bool followed_by_bn) {
    if (first && skip_first_conv) {
      first = false;
      return;
    }
    first = false;
    auto pruner =
        std::make_shared<GradientPruner>(cfg, rng.split(), conv.name());
    if (followed_by_bn) {
      conv.set_output_grad_transform(pruner);  // CONV-BN-ReLU: prune dO
    } else {
      conv.set_input_grad_transform(pruner);   // CONV-ReLU: prune dI
    }
    attached.pruners.push_back(std::move(pruner));
  });
  return attached;
}

}  // namespace sparsetrain::pruning
