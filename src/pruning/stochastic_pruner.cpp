#include "pruning/stochastic_pruner.hpp"

#include <cmath>

namespace sparsetrain::pruning {

PruneStats stochastic_prune(std::span<float> g, double tau, Rng& rng) {
  PruneStats stats;
  stats.total = g.size();
  if (tau <= 0.0) return stats;

  const auto tau_f = static_cast<float>(tau);
  for (float& x : g) {
    const float mag = std::abs(x);
    if (mag >= tau_f || x == 0.0f) continue;
    ++stats.below;
    const double r = rng.uniform();
    if (static_cast<double>(mag) > tau * r) {
      x = x > 0.0f ? tau_f : -tau_f;
      ++stats.saturated;
    } else {
      x = 0.0f;
      ++stats.zeroed;
    }
  }
  return stats;
}

}  // namespace sparsetrain::pruning
