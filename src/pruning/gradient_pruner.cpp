#include "pruning/gradient_pruner.hpp"

#include <cmath>

#include "pruning/threshold.hpp"
#include "util/require.hpp"

namespace sparsetrain::pruning {

GradientPruner::GradientPruner(PruningConfig cfg, Rng rng,
                               std::string layer_name)
    : cfg_(cfg),
      rng_(rng),
      layer_name_(std::move(layer_name)),
      fifo_(cfg.fifo_depth) {
  ST_REQUIRE(cfg_.target_sparsity >= 0.0 && cfg_.target_sparsity < 1.0,
             "target sparsity must be in [0,1)");
}

void GradientPruner::apply(Tensor& grad) {
  auto g = grad.flat();
  const std::size_t n = g.size();
  ST_REQUIRE(n > 0, "cannot prune an empty gradient tensor");

  // Predicted threshold for this batch (0 until the FIFO has filled, which
  // reproduces Algorithm 1's warm-up behaviour).
  const double tau_hat = fifo_.ready() ? fifo_.predicted() : 0.0;
  last_predicted_ = tau_hat;

  // Single fused pass: accumulate Σ|g| of the original values while
  // applying the stochastic rule with τ'. This mirrors the hardware, where
  // the PPU accumulates |g| as gradients stream through on their way to
  // the buffer.
  double abs_sum = 0.0;
  const auto tau_f = static_cast<float>(tau_hat);
  std::size_t nonzero = 0;
  for (float& x : g) {
    const float mag = std::abs(x);
    abs_sum += mag;
    if (tau_hat > 0.0 && mag < tau_f && x != 0.0f) {
      const double r = rng_.uniform();
      if (static_cast<double>(mag) > tau_hat * r) {
        x = x > 0.0f ? tau_f : -tau_f;
      } else {
        x = 0.0f;
      }
    }
    if (x != 0.0f) ++nonzero;
  }

  // Determine this batch's threshold and push it for future prediction.
  last_determined_ =
      determine_threshold(estimate_sigma(abs_sum, n), cfg_.target_sparsity);
  fifo_.push(last_determined_);

  last_density_ = static_cast<double>(nonzero) / static_cast<double>(n);
  ++batches_;
}

}  // namespace sparsetrain::pruning
