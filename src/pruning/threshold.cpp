#include "pruning/threshold.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace sparsetrain::pruning {

double estimate_sigma(double abs_sum, std::size_t n) {
  ST_REQUIRE(abs_sum >= 0.0, "abs_sum must be non-negative");
  if (n == 0) return 0.0;
  return std::sqrt(M_PI / 2.0) * abs_sum / static_cast<double>(n);
}

double estimate_sigma(std::span<const float> g) {
  double abs_sum = 0.0;
  for (float x : g) abs_sum += std::abs(static_cast<double>(x));
  return estimate_sigma(abs_sum, g.size());
}

double determine_threshold(double sigma_hat, double target_sparsity) {
  ST_REQUIRE(sigma_hat >= 0.0, "sigma must be non-negative");
  ST_REQUIRE(target_sparsity >= 0.0 && target_sparsity < 1.0,
             "target sparsity must be in [0,1)");
  if (target_sparsity == 0.0 || sigma_hat == 0.0) return 0.0;
  return sigma_hat * inverse_normal_cdf((1.0 + target_sparsity) / 2.0);
}

double determine_threshold(std::span<const float> g, double target_sparsity) {
  return determine_threshold(estimate_sigma(g), target_sparsity);
}

}  // namespace sparsetrain::pruning
