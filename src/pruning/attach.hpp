// Wires gradient pruners into a network at the paper's pruning positions
// (Fig. 4): CONV-ReLU convs prune their outgoing dI; CONV-BN-ReLU convs
// prune their incoming dO. Each conv gets its own pruner (own FIFO), as the
// threshold prediction scheme is per-layer.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "pruning/gradient_pruner.hpp"

namespace sparsetrain::pruning {

/// Handles to the pruners attached to one network.
struct AttachedPruners {
  std::vector<std::shared_ptr<GradientPruner>> pruners;

  /// Mean post-pruning gradient density across layers for the most recent
  /// step (the Table II ρ_nnz statistic). Returns 1 when nothing pruned yet.
  double mean_last_density() const;

  /// Mean predicted threshold across layers (diagnostics).
  double mean_predicted_threshold() const;
};

/// Attaches one GradientPruner per conv layer of `net`. The first conv is
/// skipped by default: pruning its dI is pointless (nothing upstream
/// consumes it) and the paper's scheme targets gradients that feed further
/// computation.
AttachedPruners attach_gradient_pruners(nn::Layer& net,
                                        const PruningConfig& cfg, Rng& rng,
                                        bool skip_first_conv = true);

}  // namespace sparsetrain::pruning
