// Stochastic pruning rule (paper §III-A, Fig. 3).
//
// For each gradient g with |g| < τ, draw r ~ U[0,1):
//   |g| > τ·r  →  g ← sign(g)·τ      (probability |g|/τ)
//   otherwise  →  g ← 0              (probability 1 − |g|/τ)
// so E[ĝ] = g: pruning leaves each component unbiased, which is why the
// gradient distribution (and hence convergence) is preserved.
#pragma once

#include <cstddef>
#include <span>

#include "util/rng.hpp"

namespace sparsetrain::pruning {

/// Outcome counters of one pruning pass.
struct PruneStats {
  std::size_t total = 0;       ///< elements visited
  std::size_t below = 0;       ///< elements with |g| < τ (prune candidates)
  std::size_t zeroed = 0;      ///< candidates set to 0
  std::size_t saturated = 0;   ///< candidates snapped to ±τ

  /// Fraction of elements set to zero by this pass.
  double zeroed_fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(zeroed) / static_cast<double>(total);
  }
};

/// Applies the rule in place. τ ≤ 0 is a no-op (still counts totals).
PruneStats stochastic_prune(std::span<float> g, double tau, Rng& rng);

}  // namespace sparsetrain::pruning
