// Per-layer gradient pruner: Algorithm 1 of the paper, as a
// nn::GradientTransform pluggable into the conv layers' pruning positions.
//
// One apply() call = one batch of that layer's activation gradients:
//   1. prune on the fly with the FIFO-predicted threshold τ' (single pass,
//      accumulating Σ|g| of the *original* values as it goes — the same
//      accumulation the PPU performs in hardware);
//   2. determine this batch's threshold τ from Σ|g| and push it into the
//      FIFO for future batches.
#pragma once

#include <cstddef>
#include <string>

#include "nn/layer.hpp"
#include "pruning/fifo_predictor.hpp"
#include "pruning/stochastic_pruner.hpp"
#include "util/rng.hpp"

namespace sparsetrain::pruning {

struct PruningConfig {
  double target_sparsity = 0.9;  ///< the paper's p
  std::size_t fifo_depth = 4;    ///< the paper's N_F
};

class GradientPruner final : public nn::GradientTransform {
 public:
  GradientPruner(PruningConfig cfg, Rng rng, std::string layer_name = "");

  void apply(Tensor& grad) override;

  /// Batches processed so far (pruned or not).
  std::size_t batches() const { return batches_; }

  /// Density of the gradient tensor after the most recent apply().
  double last_density() const { return last_density_; }

  /// Threshold used for the most recent apply() (0 while FIFO warms up).
  double last_predicted_threshold() const { return last_predicted_; }

  /// Threshold determined from the most recent batch.
  double last_determined_threshold() const { return last_determined_; }

  const PruningConfig& config() const { return cfg_; }
  const std::string& layer_name() const { return layer_name_; }

 private:
  PruningConfig cfg_;
  Rng rng_;
  std::string layer_name_;
  ThresholdFifo fifo_;
  std::size_t batches_ = 0;
  double last_density_ = 1.0;
  double last_predicted_ = 0.0;
  double last_determined_ = 0.0;
};

}  // namespace sparsetrain::pruning
