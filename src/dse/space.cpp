#include "dse/space.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "util/hash.hpp"
#include "util/require.hpp"

namespace sparsetrain::dse {

namespace {

void put_double(std::ostringstream& os, double v) {
  // Bit pattern, so 0.8999999 and 0.9 never collide on one key.
  os << std::bit_cast<std::uint64_t>(v) << ';';
}

void put_name(std::ostringstream& os, const std::string& name) {
  os << name.size() << ':' << name << ';';
}

/// Canonical serialisation of every ArchConfig field except `name` (the
/// name IS derived from this key, see DesignPoint::backend_name).
std::string arch_key(const sim::ArchConfig& a) {
  std::ostringstream os;
  os << "arch=" << a.pe_groups << ',' << a.pes_per_group << ','
     << a.buffer_bytes << ',' << a.sparse << ',' << a.seed << ','
     << a.max_sched_samples << ',' << a.timing.weight_port_width << ','
     << a.timing.pipeline_drain << ';';
  put_double(os, a.clock_ghz);
  put_double(os, a.energy.mac_pj);
  put_double(os, a.energy.reg_pj);
  put_double(os, a.energy.sram_pj);
  put_double(os, a.energy.dram_pj);
  put_double(os, a.energy.ctrl_pj_cycle);
  return os.str();
}

std::string hex8(std::uint64_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x",
                static_cast<unsigned>(v ^ (v >> 32)));
  return buf;
}

}  // namespace

Scenario Scenario::dense() {
  Scenario s;
  s.name = "dense";
  s.kind = Kind::Dense;
  return s;
}

Scenario Scenario::natural(double act_density) {
  Scenario s;
  s.name = "natural";
  s.kind = Kind::Natural;
  s.act_density = act_density;
  return s;
}

Scenario Scenario::pruned(double p, double act_density) {
  Scenario s;
  char buf[32];
  std::snprintf(buf, sizeof buf, "p%.0f", p * 100.0);
  s.name = buf;
  s.kind = Kind::Pruned;
  s.p = p;
  s.act_density = act_density;
  return s;
}

Scenario Scenario::calibrated(std::string name, double act_density,
                              double do_density) {
  Scenario s;
  s.name = std::move(name);
  s.kind = Kind::Calibrated;
  s.act_density = act_density;
  s.do_density = do_density;
  return s;
}

workload::SparsityProfile Scenario::profile(
    const workload::NetworkConfig& net) const {
  switch (kind) {
    case Kind::Dense:
      return workload::SparsityProfile::dense(net);
    case Kind::Natural:
      return workload::SparsityProfile::natural(net, act_density);
    case Kind::Pruned:
      return workload::SparsityProfile::pruned(net, p, act_density);
    case Kind::Calibrated:
      return workload::SparsityProfile::calibrated(net, act_density,
                                                   do_density, name);
  }
  ST_REQUIRE(false, "unknown scenario kind");
  __builtin_unreachable();
}

std::string Scenario::key() const {
  std::ostringstream os;
  os << "scenario=";
  put_name(os, name);
  os << static_cast<int>(kind) << ';';
  put_double(os, act_density);
  put_double(os, do_density);
  put_double(os, p);
  return os.str();
}

std::string DesignPoint::backend_name() const {
  std::ostringstream os;
  os << "dse-g" << arch.pe_groups << 'x' << arch.pes_per_group << "-b"
     << arch.buffer_bytes / 1024 << "k-c"
     << static_cast<long>(std::lround(arch.clock_ghz * 1000.0)) << '-'
     << (arch.sparse ? "sp" : "dn") << '-' << hex8(fnv1a(arch_key(arch)));
  return os.str();
}

std::string DesignPoint::label() const {
  std::ostringstream os;
  os << backend_name() << '/' << scenario.name << '/'
     << isa::engine_name(engine) << "/b" << batch;
  return os.str();
}

std::size_t SpaceSpec::arch_points() const {
  return pe_groups.size() * pes_per_group.size() * buffer_bytes.size() *
         clock_ghz.size() * sparse.size();
}

std::size_t SpaceSpec::size() const {
  return arch_points() * engine.size() * batch.size() * scenarios.size();
}

DesignPoint SpaceSpec::point(std::size_t index) const {
  ST_REQUIRE(index < size(), "design-point index " + std::to_string(index) +
                                 " out of range (space has " +
                                 std::to_string(size()) + " points)");
  DesignPoint pt;
  pt.index = index;
  // Mixed-radix decode, first axis fastest-varying.
  std::size_t rest = index;
  const auto digit = [&rest](std::size_t radix) {
    const std::size_t d = rest % radix;
    rest /= radix;
    return d;
  };
  pt.arch = base;
  pt.arch.pe_groups = pe_groups[digit(pe_groups.size())];
  pt.arch.pes_per_group = pes_per_group[digit(pes_per_group.size())];
  pt.arch.buffer_bytes = buffer_bytes[digit(buffer_bytes.size())];
  pt.arch.clock_ghz = clock_ghz[digit(clock_ghz.size())];
  pt.arch.sparse = sparse[digit(sparse.size())];
  pt.engine = engine[digit(engine.size())];
  pt.batch = batch[digit(batch.size())];
  pt.scenario = scenarios[digit(scenarios.size())];
  pt.arch.name = pt.backend_name();
  pt.arch.validate();
  return pt;
}

std::string SpaceSpec::key() const {
  std::ostringstream os;
  os << "space=";
  const auto axis = [&os](const char* name, const auto& values) {
    os << name << '[';
    for (const auto v : values) os << v << ',';
    os << "];";
  };
  axis("g", pe_groups);
  axis("p", pes_per_group);
  axis("b", buffer_bytes);
  os << "c[";
  for (const double v : clock_ghz) put_double(os, v);
  os << "];";
  axis("s", sparse);
  os << "e[";
  for (const isa::EngineKind e : engine) os << static_cast<int>(e) << ',';
  os << "];";
  axis("n", batch);
  os << "scen[";
  for (const Scenario& s : scenarios) os << s.key();
  os << "];";
  os << arch_key(base);
  return os.str();
}

std::uint64_t SpaceSpec::fingerprint() const { return fnv1a(key()); }

void SpaceSpec::validate() const {
  const auto non_empty = [](const char* name, std::size_t n) {
    ST_REQUIRE(n > 0,
               std::string("space axis '") + name + "' must be non-empty");
  };
  non_empty("pe_groups", pe_groups.size());
  non_empty("pes_per_group", pes_per_group.size());
  non_empty("buffer_bytes", buffer_bytes.size());
  non_empty("clock_ghz", clock_ghz.size());
  non_empty("sparse", sparse.size());
  non_empty("engine", engine.size());
  non_empty("batch", batch.size());
  non_empty("scenarios", scenarios.size());

  // Duplicate axis values would enumerate two points with one identity
  // (and one backend name) — reject instead of silently double-counting.
  const auto distinct = [](const char* name, const auto& values) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      for (std::size_t j = i + 1; j < values.size(); ++j) {
        ST_REQUIRE(!(values[i] == values[j]),
                   std::string("space axis '") + name +
                       "' lists the same value twice");
      }
    }
  };
  distinct("pe_groups", pe_groups);
  distinct("pes_per_group", pes_per_group);
  distinct("buffer_bytes", buffer_bytes);
  distinct("clock_ghz", clock_ghz);
  distinct("sparse", sparse);
  distinct("engine", engine);
  distinct("batch", batch);

  for (const std::size_t b : batch) {
    ST_REQUIRE(b > 0 && b <= 4096,
               "batch axis value " + std::to_string(b) +
                   " out of range [1, 4096]");
  }
  std::unordered_set<std::string> names;
  for (const Scenario& s : scenarios) {
    ST_REQUIRE(!s.name.empty(), "scenario names must be non-empty");
    ST_REQUIRE(names.insert(s.name).second,
               "duplicate scenario name '" + s.name + "'");
    ST_REQUIRE(s.act_density > 0.0 && s.act_density <= 1.0,
               "scenario '" + s.name + "': act_density " +
                   std::to_string(s.act_density) + " outside (0, 1]");
    ST_REQUIRE(s.do_density > 0.0 && s.do_density <= 1.0,
               "scenario '" + s.name + "': do_density " +
                   std::to_string(s.do_density) + " outside (0, 1]");
    ST_REQUIRE(s.p >= 0.0 && s.p < 1.0,
               "scenario '" + s.name + "': pruning rate " +
                   std::to_string(s.p) + " outside [0, 1)");
  }

  // Every enumerable architecture must be buildable. The arch axes are
  // the slowest-growing part of the space (scenario/engine/batch do not
  // change the ArchConfig), so validating each distinct architecture once
  // covers every point.
  SpaceSpec arch_only = *this;
  arch_only.engine = {isa::EngineKind::Statistical};
  arch_only.batch = {1};
  arch_only.scenarios = {Scenario::dense()};
  for (std::size_t i = 0; i < arch_only.size(); ++i) {
    arch_only.point(i);  // point() calls ArchConfig::validate()
  }
}

}  // namespace sparsetrain::dse
