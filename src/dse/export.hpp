// Machine-readable export of exploration results.
//
// Same conventions as core/export: one CSV row per candidate with the
// decoded axes and the objective vector (an `on_front` column marks the
// Pareto frontier), and a JSON document carrying the full exploration —
// points, frontier indices, evaluation count and the ProgramCache
// hit-rate — so sweeps feed plotting scripts and CI gates directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "dse/explorer.hpp"

namespace sparsetrain::dse {

/// Header used by export_points_csv, in column order.
std::vector<std::string> points_csv_header();

/// One row per evaluated candidate (incomplete/pruned candidates are
/// included with their status so halving output is auditable).
void export_points_csv(const ExploreResult& result, std::ostream& out);
void export_points_csv(const ExploreResult& result, const std::string& path);

/// Frontier rows only, in frontier order.
void export_frontier_csv(const ExploreResult& result, std::ostream& out);
void export_frontier_csv(const ExploreResult& result,
                         const std::string& path);

/// Whole exploration as one JSON object (schema
/// "sparsetrain.dse_exploration/v1").
void export_json(const ExploreResult& result, std::ostream& out);
void export_json(const ExploreResult& result, const std::string& path);

}  // namespace sparsetrain::dse
