// Pareto-dominance layer of the DSE subsystem.
//
// Every explored candidate collapses to a three-objective vector —
// latency, on-chip energy, and a silicon-area proxy — all minimised. The
// frontier extraction is deliberately separate from the Explorer so tests
// can hammer the dominance logic with synthetic objective sets (and a
// brute-force cross-check) without running any simulation.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/accelerator.hpp"

namespace sparsetrain::dse {

/// One candidate's objective vector; every component is minimised.
struct Objectives {
  double latency_ms = 0.0;  ///< simulated latency summed over workloads
  double energy_uj = 0.0;   ///< on-chip energy summed over workloads
  double area = 0.0;        ///< area_proxy() of the architecture

  bool operator==(const Objectives&) const = default;
};

/// Area proxy in arbitrary units: one PE datapath = 1.0, global-buffer
/// SRAM = 1.0 per 2 KiB (a 16-bit MAC slice and ~2 KiB of SRAM occupy
/// the same order of silicon in the 14 nm-class the energy constants are
/// calibrated to). Not a floorplan — a monotone cost that makes "more
/// PEs / more buffer" a real objective instead of a free lunch.
double area_proxy(const sim::ArchConfig& cfg);

/// True when `a` is at least as good as `b` in every objective and
/// strictly better in at least one. Equal vectors dominate neither way.
bool dominates(const Objectives& a, const Objectives& b);

/// Indices of the non-dominated points, sorted by (latency, energy,
/// area, index) — the stable tie-break makes frontier output
/// byte-reproducible. Duplicates of a frontier vector all stay on the
/// front (they are the same trade-off; equal vectors do not dominate).
std::vector<std::size_t> pareto_front(const std::vector<Objectives>& points);

/// Dominance depth of every point: 0 = on the front, 1 = dominated only
/// after the front is peeled away, and so on. The Explorer's
/// successive-halving strategy ranks rung survivors with this.
std::vector<std::size_t> pareto_ranks(const std::vector<Objectives>& points);

}  // namespace sparsetrain::dse
