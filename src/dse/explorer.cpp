#include "dse/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "util/hash.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain::dse {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::Grid: return "grid";
    case Strategy::Random: return "random";
    case Strategy::SuccessiveHalving: return "halving";
  }
  return "?";
}

double ExploreResult::cache_hit_rate() const {
  return cache.lookups() == 0
             ? 0.0
             : static_cast<double>(cache.hits) /
                   static_cast<double>(cache.lookups());
}

double ExploreResult::store_hit_rate() const {
  return store.lookups() == 0
             ? 0.0
             : static_cast<double>(store.hits) /
                   static_cast<double>(store.lookups());
}

const PointResult* ExploreResult::find(
    const std::function<bool(const DesignPoint&)>& pred) const {
  for (const PointResult& p : points) {
    if (p.complete && pred(p.point)) return &p;
  }
  return nullptr;
}

namespace {

/// Sample of `k` distinct ordinals from [0, total), deterministic in the
/// Rng stream (sparse Fisher–Yates; the space may be far larger than the
/// sample). Returned sorted so candidates stay in enumeration order.
std::vector<std::size_t> sample_without_replacement(std::size_t total,
                                                    std::size_t k, Rng& rng) {
  std::unordered_map<std::size_t, std::size_t> swapped;
  const auto value_at = [&swapped](std::size_t i) {
    const auto it = swapped.find(i);
    return it == swapped.end() ? i : it->second;
  };
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.uniform_index(total - i);
    out.push_back(value_at(j));
    swapped[j] = value_at(i);  // slot i is never revisited
  }
  std::sort(out.begin(), out.end());
  return out;
}

Objectives aggregate(const std::vector<WorkloadEval>& evals,
                     const sim::ArchConfig& arch) {
  Objectives o;
  for (const WorkloadEval& e : evals) {
    o.latency_ms += e.report.latency_ms();
    o.energy_uj += e.report.energy.on_chip_pj() * 1e-6;
  }
  o.area = area_proxy(arch);
  return o;
}

}  // namespace

Explorer::Explorer(core::Session& session) : session_(session) {}

ExploreResult Explorer::explore(
    const SpaceSpec& space,
    const std::vector<workload::NetworkConfig>& workloads,
    const ExploreOptions& options) {
  space.validate();
  ST_REQUIRE(!workloads.empty(), "exploration needs at least one workload");
  ST_REQUIRE(options.strategy != Strategy::SuccessiveHalving ||
                 options.eta > 1.0,
             "successive halving needs eta > 1");

  const auto stats_before = session_.program_cache().stats();
  const bool has_store = session_.result_store() != nullptr;
  serve::StoreStats store_before;
  if (has_store) store_before = session_.result_store()->stats();
  ExploreResult result;

  // ---- candidate selection (depends only on the options + space).
  const std::size_t total = space.size();
  std::vector<std::size_t> ordinals;
  if (options.strategy == Strategy::Random && options.samples > 0 &&
      options.samples < total) {
    Rng rng(mix64(options.seed, space.fingerprint()));
    ordinals = sample_without_replacement(total, options.samples, rng);
  } else {
    ordinals.resize(total);
    for (std::size_t i = 0; i < total; ++i) ordinals[i] = i;
  }

  result.points.reserve(ordinals.size());
  for (const std::size_t ord : ordinals) {
    PointResult pr;
    pr.point = space.point(ord);
    result.points.push_back(std::move(pr));
  }

  // ---- register every distinct architecture once. Names are derived
  // from the full ArchConfig content, so an already-present "dse-..."
  // backend is the same architecture and is reused.
  for (const PointResult& pr : result.points) {
    const std::string name = pr.point.backend_name();
    if (!session_.backends().contains(name)) {
      session_.backends().register_arch(name, pr.point.arch);
    }
  }

  // ---- evaluate `survivors` on the given workloads, batched as one
  // Session job per (workload, scenario, engine, batch) group so every
  // architecture sharing a program rides one compile. Deterministic:
  // groups live in an ordered map, jobs are waited in group order, and
  // each candidate's evals grow in workload order.
  const auto evaluate = [&](const std::vector<std::size_t>& survivors,
                            const std::vector<std::size_t>& wl_ids,
                            bool promotion) {
    using GroupKey = std::tuple<std::size_t, std::string, int, std::size_t>;
    std::map<GroupKey, std::vector<std::size_t>> groups;
    for (const std::size_t wl : wl_ids) {
      for (const std::size_t i : survivors) {
        const DesignPoint& pt = result.points[i].point;
        const isa::EngineKind engine =
            promotion ? isa::EngineKind::Exact : pt.engine;
        groups[{wl, pt.scenario.name, static_cast<int>(engine), pt.batch}]
            .push_back(i);
      }
    }
    std::vector<core::Session::JobHandle> handles;
    handles.reserve(groups.size());
    for (const auto& [key, members] : groups) {
      const std::size_t wl = std::get<0>(key);
      const DesignPoint& first = result.points[members.front()].point;
      std::vector<std::string> names;
      names.reserve(members.size());
      for (const std::size_t i : members) {
        names.push_back(result.points[i].point.backend_name());
      }
      core::Session::JobOptions jopts;
      jopts.batch = first.batch;
      jopts.sim.engine =
          promotion ? isa::EngineKind::Exact : first.engine;
      jopts.sim.exact = options.exact;
      handles.push_back(session_.submit(
          workloads[wl], first.scenario.profile(workloads[wl]), names,
          jopts));
      result.evaluations += members.size();
    }
    std::size_t g = 0;
    for (const auto& [key, members] : groups) {
      const core::EvalResult& r = session_.wait(handles[g++]);
      for (const std::size_t i : members) {
        PointResult& pr = result.points[i];
        auto& evals = promotion ? pr.exact_evals : pr.evals;
        evals.push_back({workloads[std::get<0>(key)].name,
                         r.report(pr.point.backend_name())});
      }
    }
    for (const std::size_t i : survivors) {
      PointResult& pr = result.points[i];
      if (promotion) {
        pr.exact_objectives = aggregate(pr.exact_evals, pr.point.arch);
      } else {
        pr.objectives = aggregate(pr.evals, pr.point.arch);
      }
    }
  };

  // ---- rung loop. Grid/Random are one rung over every workload;
  // halving pays for workloads one at a time and thins between rungs.
  const bool halving = options.strategy == Strategy::SuccessiveHalving;
  std::vector<std::size_t> survivors(result.points.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) survivors[i] = i;

  const std::size_t rungs = halving ? workloads.size() : 1;
  for (std::size_t r = 0; r < rungs && !survivors.empty(); ++r) {
    std::vector<std::size_t> wl_ids;
    if (halving) {
      wl_ids.push_back(r);
    } else {
      for (std::size_t w = 0; w < workloads.size(); ++w) wl_ids.push_back(w);
    }
    evaluate(survivors, wl_ids, /*promotion=*/false);

    if (options.prune) {
      std::vector<std::size_t> kept;
      for (const std::size_t i : survivors) {
        if (options.prune(result.points[i])) {
          result.points[i].pruned = true;
        } else {
          kept.push_back(i);
        }
      }
      survivors.swap(kept);
    }

    if (halving && r + 1 < rungs && survivors.size() > 1) {
      // Rank the survivors' partial objectives and keep ceil(n / eta).
      std::vector<Objectives> objs;
      objs.reserve(survivors.size());
      for (const std::size_t i : survivors) {
        objs.push_back(result.points[i].objectives);
      }
      const std::vector<std::size_t> ranks = pareto_ranks(objs);
      std::vector<std::size_t> order(survivors.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  if (ranks[a] != ranks[b]) return ranks[a] < ranks[b];
                  const Objectives& x = objs[a];
                  const Objectives& y = objs[b];
                  if (x.latency_ms != y.latency_ms)
                    return x.latency_ms < y.latency_ms;
                  if (x.energy_uj != y.energy_uj)
                    return x.energy_uj < y.energy_uj;
                  if (x.area != y.area) return x.area < y.area;
                  return survivors[a] < survivors[b];
                });
      const auto keep = static_cast<std::size_t>(std::ceil(
          static_cast<double>(survivors.size()) / options.eta));
      std::vector<std::size_t> kept;
      kept.reserve(keep);
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i < keep) {
          kept.push_back(survivors[order[i]]);
        } else {
          result.points[survivors[order[i]]].pruned = true;
        }
      }
      std::sort(kept.begin(), kept.end());
      survivors.swap(kept);
    }
  }

  // ---- frontier over the fully evaluated candidates.
  std::vector<std::size_t> complete;
  std::vector<Objectives> objs;
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    PointResult& pr = result.points[i];
    pr.complete = !pr.pruned && pr.evals.size() == workloads.size();
    if (pr.complete) {
      complete.push_back(i);
      objs.push_back(pr.objectives);
    }
  }
  for (const std::size_t f : pareto_front(objs)) {
    result.frontier.push_back(complete[f]);
    result.points[complete[f]].on_front = true;
  }

  // ---- promote the best survivors of the cheap statistical search to
  // exact validation.
  if (options.exact_validate > 0) {
    std::vector<std::size_t> promoted;
    for (const std::size_t i : result.frontier) {
      if (promoted.size() >= options.exact_validate) break;
      const DesignPoint& pt = result.points[i].point;
      // The exact engine has no dense semantics, and an Exact-axis point
      // has already been exactly evaluated.
      if (!pt.arch.sparse || pt.engine == isa::EngineKind::Exact) continue;
      promoted.push_back(i);
    }
    if (!promoted.empty()) {
      std::vector<std::size_t> wl_ids;
      for (std::size_t w = 0; w < workloads.size(); ++w) wl_ids.push_back(w);
      evaluate(promoted, wl_ids, /*promotion=*/true);
      for (const std::size_t i : promoted) {
        result.points[i].exact_validated = true;
      }
    }
  }

  const auto stats_after = session_.program_cache().stats();
  result.cache.hits = stats_after.hits - stats_before.hits;
  result.cache.misses = stats_after.misses - stats_before.misses;
  result.simulations = result.evaluations;
  result.store_attached = has_store;
  if (has_store) {
    const serve::StoreStats store_after = session_.result_store()->stats();
    result.store.hits = store_after.hits - store_before.hits;
    result.store.misses = store_after.misses - store_before.misses;
    result.store.puts = store_after.puts - store_before.puts;
    result.store.evictions = store_after.evictions - store_before.evictions;
    result.store.torn_skipped =
        store_after.torn_skipped - store_before.torn_skipped;
    // Size figures are absolute, not deltas — current store shape.
    result.store.entries = store_after.entries;
    result.store.program_entries = store_after.program_entries;
    result.store.bytes = store_after.bytes;
    result.simulations = result.evaluations - result.store.hits;
  }
  return result;
}

}  // namespace sparsetrain::dse
