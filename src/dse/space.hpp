// Design-space definition for architecture exploration.
//
// A SpaceSpec is the cross product of parameter axes over the simulated
// architecture (PE groups, PEs per group, buffer capacity, clock,
// sparse/dense semantics), the execution choice (statistical vs exact
// engine, minibatch size) and the sparsity scenario the workload runs
// under. Points are enumerated deterministically (mixed-radix decode of
// the ordinal, first axis fastest-varying), and the whole space has a
// canonical serialisation + 64-bit fingerprint — the same content-derived
// seeding discipline core::Session uses — so a search strategy seeded
// from (user seed, space fingerprint) reproduces bit-exactly anywhere.
//
// dse::Explorer consumes a SpaceSpec; see explorer.hpp for the search
// side and pareto.hpp for the frontier extraction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "sim/accelerator.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::dse {

/// One sparsity operating point every architecture in the space is
/// evaluated under. Scenarios map onto the SparsityProfile factories:
/// fully dense, natural (post-ReLU) sparsity, analytic gradient pruning
/// at rate p, or externally calibrated densities (paper Table II numbers
/// or SparsityMeter measurements).
struct Scenario {
  enum class Kind { Dense, Natural, Pruned, Calibrated };

  std::string name;  ///< label; must be unique within one SpaceSpec
  Kind kind = Kind::Dense;
  double act_density = 0.45;  ///< I density (Natural/Pruned/Calibrated)
  double do_density = 1.0;    ///< dO density (Calibrated only)
  double p = 0.0;             ///< pruning rate (Pruned only)

  static Scenario dense();
  static Scenario natural(double act_density = 0.45);
  static Scenario pruned(double p, double act_density = 0.45);
  static Scenario calibrated(std::string name, double act_density,
                             double do_density);

  /// Materialises the per-layer density profile for one workload.
  workload::SparsityProfile profile(const workload::NetworkConfig& net) const;

  /// Canonical serialisation (densities as IEEE-754 bit patterns).
  std::string key() const;
};

/// One enumerated candidate: a fully assembled architecture plus the
/// execution and scenario choices. Produced by SpaceSpec::point().
struct DesignPoint {
  std::size_t index = 0;  ///< ordinal within the enumeration
  sim::ArchConfig arch;   ///< assembled from base + axes, named backend_name
  isa::EngineKind engine = isa::EngineKind::Statistical;
  std::size_t batch = 1;
  Scenario scenario;

  /// Stable registry name for the architecture alone (scenario/engine/
  /// batch vary per job, not per backend): a readable geometry tag plus a
  /// fingerprint of the full ArchConfig, so two spaces with different
  /// base configs can never alias one name to two architectures.
  std::string backend_name() const;

  /// Human-readable label including the execution/scenario choices.
  std::string label() const;
};

/// The search space: one value list per axis; the space is their cross
/// product. Axis vectors must be non-empty (single-element = pinned).
struct SpaceSpec {
  // Architecture axes.
  std::vector<std::size_t> pe_groups = {56};
  std::vector<std::size_t> pes_per_group = {3};
  std::vector<std::size_t> buffer_bytes = {386 * 1024};
  std::vector<double> clock_ghz = {0.8};
  /// true = SparseTrain semantics, false = the sparsity-blind dense
  /// baseline (every element costs a cycle, operands move uncompressed).
  std::vector<bool> sparse = {true};
  // Execution axes. The exact engine only has sparse semantics; dense
  // points under an Exact axis value fall back to the statistical model
  // (same rule core::Session applies).
  std::vector<isa::EngineKind> engine = {isa::EngineKind::Statistical};
  std::vector<std::size_t> batch = {1};
  // Workload-side axis.
  std::vector<Scenario> scenarios = {Scenario::pruned(0.9)};

  /// Fields not covered by an axis (timing, energy prices, scheduling
  /// seed, max_sched_samples) come from this template.
  sim::ArchConfig base;

  /// Number of points: the product of every axis size.
  std::size_t size() const;

  /// Number of distinct architectures (product of the five arch axes).
  std::size_t arch_points() const;

  /// Decodes ordinal `index` (mixed radix; axis order = declaration
  /// order, pe_groups fastest-varying). The returned point's arch has
  /// been validated.
  DesignPoint point(std::size_t index) const;

  /// Canonical serialisation of every axis and the base config — the
  /// content the exploration seed derives from.
  std::string key() const;

  /// 64-bit FNV-1a of key().
  std::uint64_t fingerprint() const;

  /// Throws ContractError when an axis is empty, a scenario is
  /// malformed (density outside (0, 1], duplicate names, bad p) or any
  /// enumerable architecture fails ArchConfig::validate().
  void validate() const;
};

}  // namespace sparsetrain::dse
