#include "dse/pareto.hpp"

#include <algorithm>
#include <limits>

namespace sparsetrain::dse {

double area_proxy(const sim::ArchConfig& cfg) {
  return static_cast<double>(cfg.pe_groups * cfg.pes_per_group) +
         static_cast<double>(cfg.buffer_bytes) / 2048.0;
}

bool dominates(const Objectives& a, const Objectives& b) {
  if (a.latency_ms > b.latency_ms || a.energy_uj > b.energy_uj ||
      a.area > b.area) {
    return false;
  }
  return a.latency_ms < b.latency_ms || a.energy_uj < b.energy_uj ||
         a.area < b.area;
}

namespace {

/// Stable objective ordering used for frontier output and rank
/// tie-breaking: (latency, energy, area, original index).
bool objective_order(const std::vector<Objectives>& pts, std::size_t a,
                     std::size_t b) {
  const Objectives& x = pts[a];
  const Objectives& y = pts[b];
  if (x.latency_ms != y.latency_ms) return x.latency_ms < y.latency_ms;
  if (x.energy_uj != y.energy_uj) return x.energy_uj < y.energy_uj;
  if (x.area != y.area) return x.area < y.area;
  return a < b;
}

}  // namespace

std::vector<std::size_t> pareto_front(const std::vector<Objectives>& points) {
  // Sweep in objective order: a point can only be dominated by one that
  // sorts before it (dominance implies <= in every component, and the
  // lexicographic order refines that), so one pass over the accumulated
  // front suffices — O(n log n + n·f) instead of the naive O(n²).
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&points](std::size_t a,
                                                  std::size_t b) {
    return objective_order(points, a, b);
  });

  std::vector<std::size_t> front;
  for (const std::size_t i : order) {
    bool dominated = false;
    for (const std::size_t j : front) {
      if (dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;  // already in (latency, energy, area, index) order
}

std::vector<std::size_t> pareto_ranks(const std::vector<Objectives>& points) {
  constexpr std::size_t kUnranked = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> rank(points.size(), kUnranked);
  std::vector<std::size_t> active(points.size());
  for (std::size_t i = 0; i < active.size(); ++i) active[i] = i;

  std::size_t depth = 0;
  while (!active.empty()) {
    // Peel the front of the still-unranked set.
    std::vector<std::size_t> next;
    for (const std::size_t i : active) {
      bool dominated = false;
      for (const std::size_t j : active) {
        if (dominates(points[j], points[i])) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        next.push_back(i);
      } else {
        rank[i] = depth;
      }
    }
    active.swap(next);
    ++depth;
  }
  return rank;
}

}  // namespace sparsetrain::dse
