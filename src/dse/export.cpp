#include "dse/export.hpp"

#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/require.hpp"

namespace sparsetrain::dse {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::vector<std::string> point_row(const PointResult& p) {
  const DesignPoint& pt = p.point;
  const char* status =
      p.complete ? (p.on_front ? "front" : "dominated")
                 : (p.pruned ? "pruned" : "partial");
  return {std::to_string(pt.index),
          pt.backend_name(),
          pt.scenario.name,
          isa::engine_name(pt.engine),
          std::to_string(pt.batch),
          std::to_string(pt.arch.pe_groups),
          std::to_string(pt.arch.pes_per_group),
          std::to_string(pt.arch.buffer_bytes),
          num(pt.arch.clock_ghz),
          pt.arch.sparse ? "1" : "0",
          num(p.objectives.latency_ms),
          num(p.objectives.energy_uj),
          num(p.objectives.area),
          status,
          p.exact_validated ? num(p.exact_objectives.latency_ms) : "",
          p.exact_validated ? num(p.exact_objectives.energy_uj) : ""};
}

}  // namespace

std::vector<std::string> points_csv_header() {
  return {"point",        "backend",    "scenario",   "engine",
          "batch",        "pe_groups",  "pes_per_group", "buffer_bytes",
          "clock_ghz",    "sparse",     "latency_ms", "energy_uj",
          "area",         "status",     "exact_latency_ms",
          "exact_energy_uj"};
}

void export_points_csv(const ExploreResult& result, std::ostream& out) {
  CsvWriter csv(out, points_csv_header());
  for (const PointResult& p : result.points) csv.add_row(point_row(p));
}

void export_points_csv(const ExploreResult& result, const std::string& path) {
  std::ofstream out(path);
  ST_REQUIRE(static_cast<bool>(out), "cannot open '" + path + "'");
  export_points_csv(result, out);
}

void export_frontier_csv(const ExploreResult& result, std::ostream& out) {
  CsvWriter csv(out, points_csv_header());
  for (const std::size_t i : result.frontier) {
    csv.add_row(point_row(result.points[i]));
  }
}

void export_frontier_csv(const ExploreResult& result,
                         const std::string& path) {
  std::ofstream out(path);
  ST_REQUIRE(static_cast<bool>(out), "cannot open '" + path + "'");
  export_frontier_csv(result, out);
}

void export_json(const ExploreResult& result, std::ostream& out) {
  out << "{\n \"schema\": \"sparsetrain.dse_exploration/v1\",\n";
  out << " \"evaluations\": " << result.evaluations << ",\n";
  out << " \"cache\": {\"hits\": " << result.cache.hits
      << ", \"misses\": " << result.cache.misses
      << ", \"hit_rate\": " << num(result.cache_hit_rate()) << "},\n";
  out << " \"frontier\": [";
  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    if (i) out << ", ";
    out << result.frontier[i];
  }
  out << "],\n \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointResult& p = result.points[i];
    const DesignPoint& pt = p.point;
    out << "  {\"point\": " << pt.index << ", \"backend\": \""
        << json_escape(pt.backend_name()) << "\", \"scenario\": \""
        << json_escape(pt.scenario.name) << "\", \"engine\": \""
        << isa::engine_name(pt.engine) << "\", \"batch\": " << pt.batch
        << ",\n   \"arch\": {\"pe_groups\": " << pt.arch.pe_groups
        << ", \"pes_per_group\": " << pt.arch.pes_per_group
        << ", \"buffer_bytes\": " << pt.arch.buffer_bytes
        << ", \"clock_ghz\": " << num(pt.arch.clock_ghz)
        << ", \"sparse\": " << (pt.arch.sparse ? "true" : "false") << "},\n"
        << "   \"objectives\": {\"latency_ms\": "
        << num(p.objectives.latency_ms)
        << ", \"energy_uj\": " << num(p.objectives.energy_uj)
        << ", \"area\": " << num(p.objectives.area) << "},\n   \"evals\": [";
    for (std::size_t e = 0; e < p.evals.size(); ++e) {
      const WorkloadEval& we = p.evals[e];
      if (e) out << ", ";
      out << "{\"workload\": \"" << json_escape(we.workload)
          << "\", \"cycles\": " << we.report.total_cycles
          << ", \"latency_ms\": " << num(we.report.latency_ms())
          << ", \"on_chip_uj\": "
          << num(we.report.energy.on_chip_pj() * 1e-6) << "}";
    }
    out << "],\n   \"complete\": " << (p.complete ? "true" : "false")
        << ", \"pruned\": " << (p.pruned ? "true" : "false")
        << ", \"on_front\": " << (p.on_front ? "true" : "false");
    if (p.exact_validated) {
      out << ",\n   \"exact_objectives\": {\"latency_ms\": "
          << num(p.exact_objectives.latency_ms)
          << ", \"energy_uj\": " << num(p.exact_objectives.energy_uj)
          << "}";
    }
    out << "}" << (i + 1 < result.points.size() ? "," : "") << '\n';
  }
  out << " ]\n}\n";
}

void export_json(const ExploreResult& result, const std::string& path) {
  std::ofstream out(path);
  ST_REQUIRE(static_cast<bool>(out), "cannot open '" + path + "'");
  export_json(result, out);
}

}  // namespace sparsetrain::dse
