// Search engine over a SpaceSpec.
//
// The Explorer turns candidate design points into batched core::Session
// jobs: every distinct architecture is registered as a named backend
// once, and all candidates sharing a (workload, scenario, engine, batch)
// tuple ride in ONE job — so the Session's thread pool evaluates them in
// parallel and the ProgramCache compiles each distinct (net, profile,
// options) exactly once however many architectures run it. A
// 250-architecture grid over two workloads is ~500 backend runs but only
// a handful of compiles; the cache hit-rate is reported per exploration.
//
// Strategies:
//  * Grid — every point of the space.
//  * Random — a seeded sample without replacement; the sample depends
//    only on (options.seed, space fingerprint), never on the session or
//    its worker count.
//  * SuccessiveHalving — rung r evaluates the survivors on workload r
//    only, then keeps the best ceil(n / eta) by Pareto rank (ties broken
//    by latency/energy/area/index) before paying for the next, typically
//    larger, workload. Points dropped early keep their partial
//    evaluations and are marked pruned/incomplete.
//
// An optional early-prune callback sees every candidate's statistics
// after each rung and can drop it before more evaluation money is spent;
// `exact_validate` promotes the top frontier points to a full exact-
// engine re-evaluation after the cheap statistical search converges.
//
// Determinism: results are a pure function of (space, workloads,
// options, session seed). Jobs are waited in candidate order, objective
// sums run in workload order, and every simulated number inherits the
// Session's content-derived seeding — so exploration output is
// byte-identical for any session worker count.
#pragma once

#include <functional>
#include <vector>

#include "compiler/program_cache.hpp"
#include "core/session.hpp"
#include "dse/pareto.hpp"
#include "dse/space.hpp"
#include "serve/store.hpp"

namespace sparsetrain::dse {

enum class Strategy { Grid, Random, SuccessiveHalving };

const char* strategy_name(Strategy s);

/// One workload's simulation outcome for one candidate.
struct WorkloadEval {
  std::string workload;
  sim::SimReport report;
};

/// Everything the exploration learned about one candidate.
struct PointResult {
  DesignPoint point;
  std::vector<WorkloadEval> evals;  ///< in workload order, as evaluated
  Objectives objectives;            ///< summed over `evals`
  bool complete = false;  ///< evaluated on every workload (frontier-eligible)
  bool pruned = false;    ///< dropped by halving or the prune callback
  bool on_front = false;
  /// Exact-engine promotion results (exact_validate only).
  bool exact_validated = false;
  std::vector<WorkloadEval> exact_evals;
  Objectives exact_objectives;
};

struct ExploreOptions {
  Strategy strategy = Strategy::Grid;
  /// Random: candidates drawn without replacement (clamped to the space
  /// size); 0 = the whole space.
  std::size_t samples = 0;
  /// SuccessiveHalving: survivors after each rung = ceil(n / eta).
  double eta = 2.0;
  /// Seed of the random strategy, mixed with the space fingerprint.
  std::uint64_t seed = 1;
  /// Early-prune hook: called with each candidate's result-so-far after
  /// every rung; return true to drop the candidate before the next rung
  /// (and from exact promotion). Must be a pure function of the result
  /// for the exploration to stay deterministic.
  std::function<bool(const PointResult&)> prune;
  /// Re-evaluate up to this many frontier points with the exact engine
  /// after the search (0 = off). Dense points are skipped — the exact
  /// engine has no dense semantics.
  std::size_t exact_validate = 0;
  /// Parallelism of the exact promotion runs (wall-clock only).
  sim::ExactOptions exact;
};

struct ExploreResult {
  /// Evaluated candidates in space-enumeration order (the sampled subset
  /// for Random).
  std::vector<PointResult> points;
  /// Indices into `points` of the Pareto front over complete candidates,
  /// in (latency, energy, area, index) order.
  std::vector<std::size_t> frontier;
  std::size_t evaluations = 0;  ///< backend runs performed (incl. exact)
  /// Backend runs that actually simulated — evaluations minus persistent-
  /// store hits. A warm-store re-run of an identical exploration reports
  /// simulations == 0.
  std::size_t simulations = 0;
  /// ProgramCache stats delta over this exploration (valid when nothing
  /// else used the session's cache concurrently).
  compiler::ProgramCache::Stats cache;
  /// Persistent-store stats delta over this exploration (all zero when
  /// the session has no store attached).
  bool store_attached = false;
  serve::StoreStats store;

  double cache_hit_rate() const;

  /// store.hits / store.lookups() over this exploration; 1.0 on a fully
  /// warm store, 0.0 when no store was attached.
  double store_hit_rate() const;

  /// First complete point matching the predicate; nullptr when none
  /// does. Drivers use this to read specific sweep cells out of a grid.
  const PointResult* find(
      const std::function<bool(const DesignPoint&)>& pred) const;
};

class Explorer {
 public:
  /// The session provides the backend registry, program cache and thread
  /// pool the exploration batches onto. Backends are registered into the
  /// session under content-derived "dse-..." names (reused when already
  /// present). Not thread-safe against concurrent use of the same
  /// session during explore().
  explicit Explorer(core::Session& session);

  /// Evaluates the space over the given workloads (SuccessiveHalving
  /// pays for them rung by rung in the order given — cheapest first).
  ExploreResult explore(const SpaceSpec& space,
                        const std::vector<workload::NetworkConfig>& workloads,
                        const ExploreOptions& options = {});

 private:
  core::Session& session_;
};

}  // namespace sparsetrain::dse
