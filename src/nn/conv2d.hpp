// 2-D convolution layer with explicit Forward / GTA / GTW passes.
//
// backward() computes the two steps the paper separates:
//   GTA:  dI_j = Σ_i dO_i ∗ W⁺_{i,j}   (full convolution with the kernel
//                                        rotated 180°, i.e. transposed conv)
//   GTW:  dW_{i,j} = dO_i ∗ I_j, db_i = Σ dO_i
//
// The layer also hosts the paper's two pruning positions (Fig. 4):
//   * output_grad_transform — applied to the incoming dO before GTA/GTW
//     (the CONV-BN-ReLU position), and
//   * input_grad_transform — applied to the produced dI before it is
//     handed to the previous layer (the CONV-ReLU position),
// plus an optional SparsityProbe that records the densities of all six
// operand tensors (Table I instrumentation).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "nn/layer.hpp"

namespace sparsetrain::nn {

/// Densities of the six training operands of one conv layer at one step.
/// This is exactly the paper's Table I row set.
struct ConvStepDensities {
  double weights = 1.0;       ///< W
  double weight_grads = 1.0;  ///< dW
  double input_acts = 1.0;    ///< I
  double input_grads = 1.0;   ///< dI (after any pruning transform)
  double output_acts = 1.0;   ///< O
  double output_grads = 1.0;  ///< dO (after any pruning transform)
};

/// Observer invoked at the end of each conv backward with the measured
/// operand densities.
class SparsityProbe {
 public:
  virtual ~SparsityProbe() = default;
  virtual void record(const std::string& layer_name,
                      const ConvStepDensities& densities) = 0;
};

/// Convolution hyperparameters.
struct Conv2DConfig {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;
  bool bias = true;
};

class Conv2D final : public Layer {
 public:
  explicit Conv2D(Conv2DConfig cfg, std::string name = "");

  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  void for_each_conv(const std::function<void(Conv2D&)>& fn) override {
    fn(*this);
  }
  void for_each_conv_structure(
      const std::function<void(Conv2D&, bool)>& fn) override {
    fn(*this, false);  // context unknown when visited standalone
  }

  const Conv2DConfig& config() const { return cfg_; }

  Param& weight() { return weight_; }
  Param& bias_param() { return bias_; }

  /// Pruning hook at the CONV-BN-ReLU position (incoming dO).
  void set_output_grad_transform(std::shared_ptr<GradientTransform> t) {
    output_grad_transform_ = std::move(t);
  }
  /// Pruning hook at the CONV-ReLU position (outgoing dI).
  void set_input_grad_transform(std::shared_ptr<GradientTransform> t) {
    input_grad_transform_ = std::move(t);
  }
  /// Table I instrumentation hook.
  void set_sparsity_probe(std::shared_ptr<SparsityProbe> probe) {
    probe_ = std::move(probe);
  }

  /// Input activations cached by the last training forward (GTW operand).
  const Tensor& cached_input() const;

 private:
  Tensor grad_to_input(const Tensor& grad_output) const;   // GTA
  void grad_to_weights(const Tensor& grad_output);         // GTW

  Conv2DConfig cfg_;
  std::string name_;
  Param weight_;  ///< shape {F, C, K, K}
  Param bias_;    ///< shape {1,1,1,F}; unused when cfg_.bias is false
  std::optional<Tensor> cached_input_;
  std::shared_ptr<GradientTransform> output_grad_transform_;
  std::shared_ptr<GradientTransform> input_grad_transform_;
  std::shared_ptr<SparsityProbe> probe_;
};

}  // namespace sparsetrain::nn
