// Weight initialisation (Kaiming/He for conv+ReLU stacks).
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace sparsetrain::nn {

/// He-normal initialisation of every parameter named "weight" reachable
/// from the layer; biases / BN params keep their defaults.
void kaiming_init(Layer& layer, Rng& rng);

}  // namespace sparsetrain::nn
