#include "nn/lr_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace sparsetrain::nn {

ConstantLr::ConstantLr(float rate) : rate_(rate) {
  ST_REQUIRE(rate_ > 0.0f, "learning rate must be positive");
}

float ConstantLr::rate(std::size_t) const { return rate_; }

StepDecayLr::StepDecayLr(float base, std::vector<std::size_t> milestones,
                         float gamma)
    : base_(base), milestones_(std::move(milestones)), gamma_(gamma) {
  ST_REQUIRE(base_ > 0.0f, "learning rate must be positive");
  ST_REQUIRE(gamma_ > 0.0f && gamma_ <= 1.0f, "gamma must be in (0,1]");
  ST_REQUIRE(std::is_sorted(milestones_.begin(), milestones_.end()),
             "milestones must be sorted");
}

float StepDecayLr::rate(std::size_t epoch) const {
  float r = base_;
  for (std::size_t m : milestones_) {
    if (epoch >= m) r *= gamma_;
  }
  return r;
}

CosineLr::CosineLr(float base, std::size_t total_epochs, float floor)
    : base_(base), total_epochs_(total_epochs), floor_(floor) {
  ST_REQUIRE(base_ > 0.0f, "learning rate must be positive");
  ST_REQUIRE(total_epochs_ > 0, "schedule needs a horizon");
  ST_REQUIRE(floor_ >= 0.0f && floor_ <= base_, "floor must be in [0, base]");
}

float CosineLr::rate(std::size_t epoch) const {
  const double t = std::min<double>(1.0, static_cast<double>(epoch) /
                                             static_cast<double>(total_epochs_));
  return floor_ + (base_ - floor_) *
                      static_cast<float>(0.5 * (1.0 + std::cos(M_PI * t)));
}

}  // namespace sparsetrain::nn
