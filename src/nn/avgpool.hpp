// Windowed average pooling (kernel/stride), complementing the global
// variant in pooling_misc.hpp.
#pragma once

#include "nn/layer.hpp"

namespace sparsetrain::nn {

class AvgPool2D final : public Layer {
 public:
  explicit AvgPool2D(std::size_t kernel = 2, std::size_t stride = 2);

  std::string name() const override { return "avgpool"; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  Shape input_shape_{};
};

}  // namespace sparsetrain::nn
