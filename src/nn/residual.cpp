#include "nn/residual.hpp"

#include "util/require.hpp"

namespace sparsetrain::nn {

ResidualBlock::ResidualBlock(Sequential main, Sequential shortcut,
                             std::string name)
    : name_(std::move(name)),
      main_(std::move(main)),
      shortcut_(std::move(shortcut)),
      identity_shortcut_(shortcut_.size() == 0) {
  ST_REQUIRE(main_.size() > 0, "residual block needs a main path");
}

Shape ResidualBlock::output_shape(const Shape& input) const {
  const Shape main_out = main_.output_shape(input);
  const Shape short_out =
      identity_shortcut_ ? input : shortcut_.output_shape(input);
  ST_REQUIRE(main_out == short_out,
             name_ + ": main/shortcut shape mismatch: " +
                 main_out.to_string() + " vs " + short_out.to_string());
  return main_out;
}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
  Tensor main_out = main_.forward(input, training);
  Tensor short_out =
      identity_shortcut_ ? input : shortcut_.forward(input, training);
  ST_REQUIRE(main_out.shape() == short_out.shape(),
             name_ + ": branch shape mismatch");

  Tensor out(main_out.shape());
  Tensor mask(main_out.shape());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float sum = main_out[i] + short_out[i];
    const bool pass = sum > 0.0f;
    out[i] = pass ? sum : 0.0f;
    mask[i] = pass ? 1.0f : 0.0f;
  }
  if (training) {
    final_mask_ = std::move(mask);
  } else {
    final_mask_.reset();
  }
  return out;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  ST_REQUIRE(final_mask_.has_value(),
             name_ + ": backward without training forward");
  ST_REQUIRE(grad_output.shape() == final_mask_->shape(),
             name_ + ": grad shape mismatch");

  // Through the post-add ReLU.
  Tensor g(grad_output.shape());
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = grad_output[i] * (*final_mask_)[i];

  // The add fans the gradient out to both branches.
  Tensor grad_in = main_.backward(g);
  if (identity_shortcut_) {
    grad_in.add(g);
  } else {
    grad_in.add(shortcut_.backward(g));
  }
  return grad_in;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> all = main_.params();
  for (Param* p : shortcut_.params()) all.push_back(p);
  return all;
}

void ResidualBlock::for_each_conv(const std::function<void(Conv2D&)>& fn) {
  main_.for_each_conv(fn);
  shortcut_.for_each_conv(fn);
}

void ResidualBlock::for_each_conv_structure(
    const std::function<void(Conv2D&, bool)>& fn) {
  main_.for_each_conv_structure(fn);
  shortcut_.for_each_conv_structure(fn);
}

}  // namespace sparsetrain::nn
