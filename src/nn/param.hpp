// Learnable parameter: value + accumulated gradient.
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace sparsetrain::nn {

/// A learnable tensor and its gradient accumulator. Layers own their
/// Params; the optimizer mutates them through params() pointers.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string name_, Shape shape)
      : name(std::move(name_)), value(shape), grad(shape) {}

  void zero_grad() { grad.zero(); }
};

}  // namespace sparsetrain::nn
