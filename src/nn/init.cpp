#include "nn/init.hpp"

#include <cmath>

namespace sparsetrain::nn {

void kaiming_init(Layer& layer, Rng& rng) {
  for (Param* p : layer.params()) {
    if (p->name != "weight") continue;
    const Shape& s = p->value.shape();
    // fan_in: for conv {F,C,K,K} it is C·K·K; for linear {1,1,out,in} it is
    // the trailing dimension.
    const std::size_t fan_in = (s.n > 1) ? s.c * s.h * s.w : s.w;
    const float stddev =
        std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
    p->value.fill_normal(rng, 0.0f, stddev);
  }
}

}  // namespace sparsetrain::nn
