// Model checkpointing: save/load all parameters of a network to a simple
// binary format (magic, param count, then name/shape/data records).
#pragma once

#include <string>

#include "nn/layer.hpp"

namespace sparsetrain::nn {

/// Writes every parameter reachable from `net` to `path`.
/// Returns false on I/O failure.
bool save_checkpoint(Layer& net, const std::string& path);

/// Loads parameters into `net`. The network must have the same parameter
/// sequence (names and shapes) as the one that was saved; mismatches throw
/// ContractError. Returns false on I/O failure.
bool load_checkpoint(Layer& net, const std::string& path);

}  // namespace sparsetrain::nn
