// Fully-connected layer (the classifier head of AlexNet/ResNet).
#pragma once

#include <optional>

#include "nn/layer.hpp"

namespace sparsetrain::nn {

class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, bool bias = true);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;

  Param& weight() { return weight_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  bool has_bias_;
  Param weight_;  ///< {1,1,out,in}
  Param bias_;    ///< {1,1,1,out}
  std::optional<Tensor> cached_input_;
};

}  // namespace sparsetrain::nn
