// Sequential layer container.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace sparsetrain::nn {

/// Runs layers in order; backward runs them in reverse. Also the building
/// block for residual branches.
class Sequential final : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  /// Appends a layer; returns a reference typed as the concrete layer so
  /// construction sites can keep handles.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(LayerPtr layer);

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);

  std::string name() const override { return name_.empty() ? "seq" : name_; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  void for_each_conv(const std::function<void(Conv2D&)>& fn) override;
  void for_each_conv_structure(
      const std::function<void(Conv2D&, bool)>& fn) override;

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

}  // namespace sparsetrain::nn
