#include "nn/dropout.hpp"

#include "util/require.hpp"

namespace sparsetrain::nn {

Dropout::Dropout(float rate, Rng rng) : rate_(rate), rng_(rng) {
  ST_REQUIRE(rate_ >= 0.0f && rate_ < 1.0f, "dropout rate must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || rate_ == 0.0f) {
    mask_.reset();
    return input;
  }
  const float keep_scale = 1.0f / (1.0f - rate_);
  Tensor mask(input.shape());
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float m = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    mask[i] = m;
    out[i] = input[i] * m;
  }
  mask_ = std::move(mask);
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  ST_REQUIRE(mask_.has_value(), "dropout backward without training forward");
  ST_REQUIRE(grad_output.shape() == mask_->shape(),
             "dropout grad shape mismatch");
  Tensor grad_in(grad_output.shape());
  for (std::size_t i = 0; i < grad_in.size(); ++i)
    grad_in[i] = grad_output[i] * (*mask_)[i];
  return grad_in;
}

}  // namespace sparsetrain::nn
