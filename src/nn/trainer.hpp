// Minibatch training loop (Forward → Backward(GTA+GTW) → Weight Update).
#pragma once

#include <functional>
#include <vector>

#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/lr_schedule.hpp"
#include "nn/sequential.hpp"
#include "nn/sgd.hpp"

namespace sparsetrain::nn {

struct TrainConfig {
  std::size_t batch_size = 32;
  std::size_t epochs = 5;
  SgdConfig sgd;
};

/// Metrics of one epoch.
struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
};

/// Result of a full training run.
struct TrainResult {
  std::vector<EpochStats> epochs;
  double final_train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

/// Drives the three training stages over a dataset. The network's conv
/// layers may carry pruning transforms / probes; the trainer is agnostic.
class Trainer {
 public:
  /// Called at the end of every optimisation step (for FIFO pushes etc.).
  using StepHook = std::function<void()>;

  Trainer(Sequential& net, TrainConfig cfg);

  /// Runs cfg.epochs over `train`; evaluates on `test` at the end.
  TrainResult fit(const data::Dataset& train, const data::Dataset& test);

  /// One optimisation step on an explicit batch; returns the batch loss.
  float step(const data::Batch& batch);

  /// Accuracy over a dataset in eval mode.
  double evaluate(const data::Dataset& dataset);

  void set_step_hook(StepHook hook) { step_hook_ = std::move(hook); }

  /// Optional per-epoch learning-rate policy (non-owning; must outlive
  /// fit()). Without one, cfg.sgd.learning_rate is used throughout.
  void set_lr_schedule(const LrSchedule* schedule) { schedule_ = schedule; }

 private:
  Sequential& net_;
  TrainConfig cfg_;
  Sgd optimizer_;
  SoftmaxCrossEntropy loss_;
  StepHook step_hook_;
  const LrSchedule* schedule_ = nullptr;
};

}  // namespace sparsetrain::nn
