// Stochastic gradient descent — the paper's Weight Update stage.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/param.hpp"

namespace sparsetrain::nn {

struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

/// SGD with classical momentum and decoupled L2 weight decay.
class Sgd {
 public:
  explicit Sgd(std::vector<Param*> params, SgdConfig cfg = {});

  /// Applies one update from the accumulated gradients, then clears them.
  void step();

  /// Clears all gradients without updating.
  void zero_grad();

  void set_learning_rate(float lr) { cfg_.learning_rate = lr; }
  float learning_rate() const { return cfg_.learning_rate; }

 private:
  std::vector<Param*> params_;
  SgdConfig cfg_;
  std::unordered_map<Param*, Tensor> velocity_;
};

}  // namespace sparsetrain::nn
