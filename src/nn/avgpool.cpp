#include "nn/avgpool.hpp"

#include "util/require.hpp"

namespace sparsetrain::nn {

AvgPool2D::AvgPool2D(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  ST_REQUIRE(kernel_ > 0 && stride_ > 0, "avgpool needs kernel/stride > 0");
}

Shape AvgPool2D::output_shape(const Shape& input) const {
  ST_REQUIRE(input.h >= kernel_ && input.w >= kernel_,
             "avgpool input smaller than window");
  return Shape{input.n, input.c, (input.h - kernel_) / stride_ + 1,
               (input.w - kernel_) / stride_ + 1};
}

Tensor AvgPool2D::forward(const Tensor& input, bool training) {
  (void)training;
  input_shape_ = input.shape();
  const Shape out_shape = output_shape(input_shape_);
  Tensor out(out_shape);
  const float scale = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::size_t n = 0; n < out_shape.n; ++n)
    for (std::size_t c = 0; c < out_shape.c; ++c)
      for (std::size_t oy = 0; oy < out_shape.h; ++oy)
        for (std::size_t ox = 0; ox < out_shape.w; ++ox) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < kernel_; ++ky)
            for (std::size_t kx = 0; kx < kernel_; ++kx)
              acc += input.at(n, c, oy * stride_ + ky, ox * stride_ + kx);
          out.at(n, c, oy, ox) = acc * scale;
        }
  return out;
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  const Shape out_shape = output_shape(input_shape_);
  ST_REQUIRE(grad_output.shape() == out_shape, "avgpool grad shape mismatch");
  Tensor grad_in(input_shape_);
  const float scale = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::size_t n = 0; n < out_shape.n; ++n)
    for (std::size_t c = 0; c < out_shape.c; ++c)
      for (std::size_t oy = 0; oy < out_shape.h; ++oy)
        for (std::size_t ox = 0; ox < out_shape.w; ++ox) {
          const float g = grad_output.at(n, c, oy, ox) * scale;
          for (std::size_t ky = 0; ky < kernel_; ++ky)
            for (std::size_t kx = 0; kx < kernel_; ++kx)
              grad_in.at(n, c, oy * stride_ + ky, ox * stride_ + kx) += g;
        }
  return grad_in;
}

}  // namespace sparsetrain::nn
