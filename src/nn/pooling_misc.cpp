#include "nn/pooling_misc.hpp"

#include "util/require.hpp"

namespace sparsetrain::nn {

Tensor Flatten::forward(const Tensor& input, bool training) {
  (void)training;
  input_shape_ = input.shape();
  Tensor out = input;
  out.reshape(output_shape(input_shape_));
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  ST_REQUIRE(grad_output.size() == input_shape_.size(),
             "flatten grad size mismatch");
  Tensor grad_in = grad_output;
  grad_in.reshape(input_shape_);
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  (void)training;
  input_shape_ = input.shape();
  const Shape& s = input_shape_;
  Tensor out(output_shape(s));
  const float scale = 1.0f / static_cast<float>(s.h * s.w);
  for (std::size_t n = 0; n < s.n; ++n)
    for (std::size_t c = 0; c < s.c; ++c) {
      float acc = 0.0f;
      for (std::size_t y = 0; y < s.h; ++y)
        for (std::size_t x = 0; x < s.w; ++x) acc += input.at(n, c, y, x);
      out.at(n, c, 0, 0) = acc * scale;
    }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  const Shape& s = input_shape_;
  ST_REQUIRE(grad_output.shape() == output_shape(s),
             "global-avgpool grad shape mismatch");
  Tensor grad_in(s);
  const float scale = 1.0f / static_cast<float>(s.h * s.w);
  for (std::size_t n = 0; n < s.n; ++n)
    for (std::size_t c = 0; c < s.c; ++c) {
      const float g = grad_output.at(n, c, 0, 0) * scale;
      for (std::size_t y = 0; y < s.h; ++y)
        for (std::size_t x = 0; x < s.w; ++x) grad_in.at(n, c, y, x) = g;
    }
  return grad_in;
}

}  // namespace sparsetrain::nn
