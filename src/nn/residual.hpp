// Residual block: out = ReLU(main(x) + shortcut(x)).
//
// The shortcut is identity when shapes match, otherwise a 1×1 strided conv
// (+BN), exactly the ResNet "option B" projection.
#pragma once

#include <optional>

#include "nn/layer.hpp"
#include "nn/sequential.hpp"

namespace sparsetrain::nn {

class ResidualBlock final : public Layer {
 public:
  /// main: the two-conv body; shortcut: empty Sequential means identity.
  ResidualBlock(Sequential main, Sequential shortcut, std::string name);

  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  void for_each_conv(const std::function<void(Conv2D&)>& fn) override;
  void for_each_conv_structure(
      const std::function<void(Conv2D&, bool)>& fn) override;

 private:
  std::string name_;
  Sequential main_;
  Sequential shortcut_;
  bool identity_shortcut_;
  std::optional<Tensor> final_mask_;  ///< mask of the post-add ReLU
};

}  // namespace sparsetrain::nn
