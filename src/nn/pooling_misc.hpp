// Flatten and global average pooling — small shape adapters used by the
// classifier heads.
#pragma once

#include "nn/layer.hpp"

namespace sparsetrain::nn {

/// Collapses (c, h, w) into a feature vector, keeping the batch dimension.
class Flatten final : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Shape output_shape(const Shape& input) const override {
    return Shape{input.n, 1, 1, input.c * input.h * input.w};
  }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Shape input_shape_{};
};

/// Global average pooling over (h, w) — ResNet's pre-classifier stage.
class GlobalAvgPool final : public Layer {
 public:
  std::string name() const override { return "global-avgpool"; }
  Shape output_shape(const Shape& input) const override {
    return Shape{input.n, input.c, 1, 1};
  }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Shape input_shape_{};
};

}  // namespace sparsetrain::nn
