#include "nn/linear.hpp"

#include <sstream>

#include "util/require.hpp"

namespace sparsetrain::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_("weight", Shape::mat(out_features, in_features)),
      bias_("bias", Shape::vec(out_features)) {
  ST_REQUIRE(in_features_ > 0 && out_features_ > 0,
             "linear needs positive feature counts");
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "linear-" << out_features_;
  return os.str();
}

Shape Linear::output_shape(const Shape& input) const {
  ST_REQUIRE(input.c * input.h * input.w == in_features_,
             name() + ": input features mismatch, got " + input.to_string());
  return Shape{input.n, 1, 1, out_features_};
}

Tensor Linear::forward(const Tensor& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  Tensor out(out_shape);
  const std::size_t batch = input.shape().n;

  for (std::size_t n = 0; n < batch; ++n) {
    const auto in_row = input.flat().subspan(n * in_features_, in_features_);
    for (std::size_t o = 0; o < out_features_; ++o) {
      float acc = has_bias_ ? bias_.value[o] : 0.0f;
      const auto w_row = weight_.value.row(0, 0, o);
      for (std::size_t i = 0; i < in_features_; ++i) acc += w_row[i] * in_row[i];
      out.at(n, 0, 0, o) = acc;
    }
  }

  if (training) {
    cached_input_ = input;
  } else {
    cached_input_.reset();
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  ST_REQUIRE(cached_input_.has_value(),
             name() + ": backward without training forward");
  const Tensor& input = *cached_input_;
  const std::size_t batch = input.shape().n;
  ST_REQUIRE(grad_output.shape() == output_shape(input.shape()),
             name() + ": grad shape mismatch");

  Tensor grad_in(input.shape());
  for (std::size_t n = 0; n < batch; ++n) {
    const auto in_row = input.flat().subspan(n * in_features_, in_features_);
    auto gin_row = grad_in.flat().subspan(n * in_features_, in_features_);
    for (std::size_t o = 0; o < out_features_; ++o) {
      const float g = grad_output.at(n, 0, 0, o);
      if (g == 0.0f) continue;
      auto w_row = weight_.value.row(0, 0, o);
      auto dw_row = weight_.grad.row(0, 0, o);
      for (std::size_t i = 0; i < in_features_; ++i) {
        gin_row[i] += g * w_row[i];
        dw_row[i] += g * in_row[i];
      }
      if (has_bias_) bias_.grad[o] += g;
    }
  }
  return grad_in;
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

}  // namespace sparsetrain::nn
