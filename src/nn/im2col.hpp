// im2col + GEMM reference convolution.
//
// A second, independent implementation of the conv forward pass used to
// cross-validate nn::Conv2D (two implementations agreeing by construction
// is the cheapest correctness oracle there is) and as the fast path for
// the microbenchmarks.
#pragma once

#include "tensor/tensor.hpp"

namespace sparsetrain::nn {

struct Im2ColGeometry {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;
};

/// Unfolds input {N,C,H,W} into columns {N, 1, C·K·K, OH·OW} so the conv
/// becomes a matrix product. Padding positions become zeros.
Tensor im2col(const Tensor& input, const Im2ColGeometry& geo);

/// Forward convolution via im2col + GEMM. `weights` is {F,C,K,K}; `bias`
/// may be null.
Tensor conv2d_im2col(const Tensor& input, const Tensor& weights,
                     const Tensor* bias, const Im2ColGeometry& geo);

}  // namespace sparsetrain::nn
