#include "nn/sequential.hpp"

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "util/require.hpp"

namespace sparsetrain::nn {

void Sequential::append(LayerPtr layer) {
  ST_REQUIRE(layer != nullptr, "cannot append null layer");
  layers_.push_back(std::move(layer));
}

Layer& Sequential::layer(std::size_t i) {
  ST_REQUIRE(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_)
    for (Param* p : layer->params()) all.push_back(p);
  return all;
}

void Sequential::for_each_conv(const std::function<void(Conv2D&)>& fn) {
  for (auto& layer : layers_) layer->for_each_conv(fn);
}

void Sequential::for_each_conv_structure(
    const std::function<void(Conv2D&, bool)>& fn) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (auto* conv = dynamic_cast<Conv2D*>(layers_[i].get())) {
      const bool bn_next =
          i + 1 < layers_.size() &&
          dynamic_cast<BatchNorm2D*>(layers_[i + 1].get()) != nullptr;
      fn(*conv, bn_next);
    } else {
      layers_[i]->for_each_conv_structure(fn);
    }
  }
}

}  // namespace sparsetrain::nn
