// Softmax + cross-entropy loss head.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tensor/tensor.hpp"

namespace sparsetrain::nn {

/// Numerically stable fused softmax–cross-entropy.
class SoftmaxCrossEntropy {
 public:
  /// Mean loss over the batch; logits shape {N,1,1,classes}.
  float forward(const Tensor& logits, const std::vector<std::uint32_t>& labels);

  /// d(loss)/d(logits) for the last forward call.
  Tensor backward() const;

  /// Per-sample predicted class of the last forward call.
  const std::vector<std::uint32_t>& predictions() const { return preds_; }

 private:
  std::optional<Tensor> probs_;
  std::vector<std::uint32_t> labels_;
  std::vector<std::uint32_t> preds_;
};

/// Fraction of correct predictions.
double accuracy(const std::vector<std::uint32_t>& preds,
                const std::vector<std::uint32_t>& labels);

}  // namespace sparsetrain::nn
