#include "nn/sgd.hpp"

#include "util/require.hpp"

namespace sparsetrain::nn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  for (Param* p : params_) {
    ST_REQUIRE(p != nullptr, "null param handed to SGD");
    velocity_.emplace(p, Tensor(p->value.shape()));
  }
}

void Sgd::step() {
  for (Param* p : params_) {
    Tensor& v = velocity_.at(p);
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      float g = p->grad[i];
      if (cfg_.weight_decay != 0.0f) g += cfg_.weight_decay * p->value[i];
      v[i] = cfg_.momentum * v[i] + g;
      p->value[i] -= cfg_.learning_rate * v[i];
    }
    p->zero_grad();
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace sparsetrain::nn
