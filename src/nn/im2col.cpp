#include "nn/im2col.hpp"

#include "util/require.hpp"

namespace sparsetrain::nn {

Tensor im2col(const Tensor& input, const Im2ColGeometry& geo) {
  const Shape& in = input.shape();
  ST_REQUIRE(in.c == geo.in_channels, "im2col channel mismatch");
  ST_REQUIRE(in.h + 2 * geo.padding >= geo.kernel &&
                 in.w + 2 * geo.padding >= geo.kernel,
             "im2col input smaller than kernel");
  const std::size_t oh = (in.h + 2 * geo.padding - geo.kernel) / geo.stride + 1;
  const std::size_t ow = (in.w + 2 * geo.padding - geo.kernel) / geo.stride + 1;
  const std::size_t rows = geo.in_channels * geo.kernel * geo.kernel;

  Tensor cols(Shape{in.n, 1, rows, oh * ow});
  for (std::size_t n = 0; n < in.n; ++n) {
    std::size_t r = 0;
    for (std::size_t c = 0; c < geo.in_channels; ++c) {
      for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
        for (std::size_t kx = 0; kx < geo.kernel; ++kx, ++r) {
          std::size_t col = 0;
          for (std::size_t oy = 0; oy < oh; ++oy) {
            for (std::size_t ox = 0; ox < ow; ++ox, ++col) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * geo.stride + ky) -
                  static_cast<std::ptrdiff_t>(geo.padding);
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * geo.stride + kx) -
                  static_cast<std::ptrdiff_t>(geo.padding);
              float v = 0.0f;
              if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(in.h) &&
                  ix >= 0 && ix < static_cast<std::ptrdiff_t>(in.w)) {
                v = input.at(n, c, static_cast<std::size_t>(iy),
                             static_cast<std::size_t>(ix));
              }
              cols.at(n, 0, r, col) = v;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor conv2d_im2col(const Tensor& input, const Tensor& weights,
                     const Tensor* bias, const Im2ColGeometry& geo) {
  ST_REQUIRE(weights.shape() == (Shape{geo.out_channels, geo.in_channels,
                                       geo.kernel, geo.kernel}),
             "conv2d_im2col weight shape mismatch");
  const Shape& in = input.shape();
  const std::size_t oh = (in.h + 2 * geo.padding - geo.kernel) / geo.stride + 1;
  const std::size_t ow = (in.w + 2 * geo.padding - geo.kernel) / geo.stride + 1;
  const std::size_t rows = geo.in_channels * geo.kernel * geo.kernel;
  const std::size_t cols_n = oh * ow;

  const Tensor cols = im2col(input, geo);
  Tensor output(Shape{in.n, geo.out_channels, oh, ow});

  // O[n,f,:] = W_row(f) · cols[n] — a straightforward GEMM with the weight
  // tensor viewed as {F, rows}.
  for (std::size_t n = 0; n < in.n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      const float b = bias != nullptr ? (*bias)[f] : 0.0f;
      auto out_plane =
          output.flat().subspan(output.shape().index(n, f, 0, 0), cols_n);
      for (float& x : out_plane) x = b;
      const auto w_row = weights.flat().subspan(f * rows, rows);
      for (std::size_t r = 0; r < rows; ++r) {
        const float w = w_row[r];
        if (w == 0.0f) continue;
        const auto col_row =
            cols.flat().subspan(cols.shape().index(n, 0, r, 0), cols_n);
        for (std::size_t j = 0; j < cols_n; ++j)
          out_plane[j] += w * col_row[j];
      }
    }
  }
  return output;
}

}  // namespace sparsetrain::nn
