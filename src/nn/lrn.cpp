#include "nn/lrn.hpp"

#include <cmath>

#include "util/require.hpp"

namespace sparsetrain::nn {

Lrn::Lrn(LrnConfig cfg) : cfg_(cfg) {
  ST_REQUIRE(cfg_.size >= 1, "LRN window must be >= 1");
}

float Lrn::denom_base(const Tensor& input, std::size_t n, std::size_t c,
                      std::size_t y, std::size_t x) const {
  const std::size_t channels = input.shape().c;
  const std::size_t half = cfg_.size / 2;
  const std::size_t lo = c >= half ? c - half : 0;
  const std::size_t hi = std::min(channels - 1, c + half);
  float sum_sq = 0.0f;
  for (std::size_t cc = lo; cc <= hi; ++cc) {
    const float v = input.at(n, cc, y, x);
    sum_sq += v * v;
  }
  return cfg_.k + cfg_.alpha / static_cast<float>(cfg_.size) * sum_sq;
}

Tensor Lrn::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  Tensor out(s);
  for (std::size_t n = 0; n < s.n; ++n)
    for (std::size_t c = 0; c < s.c; ++c)
      for (std::size_t y = 0; y < s.h; ++y)
        for (std::size_t x = 0; x < s.w; ++x)
          out.at(n, c, y, x) =
              input.at(n, c, y, x) /
              std::pow(denom_base(input, n, c, y, x), cfg_.beta);
  if (training) {
    cached_input_ = input;
  } else {
    cached_input_.reset();
  }
  return out;
}

Tensor Lrn::backward(const Tensor& grad_output) {
  ST_REQUIRE(cached_input_.has_value(), "lrn backward without forward");
  const Tensor& input = *cached_input_;
  const Shape& s = input.shape();
  ST_REQUIRE(grad_output.shape() == s, "lrn grad shape mismatch");

  // d b_c / d a_c' = δ_{cc'}·D^{−β} − 2αβ/size · a_c a_c' D^{−β−1}
  // for c' in c's window, with D the denominator base at c.
  Tensor grad_in(s);
  const std::size_t half = cfg_.size / 2;
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t y = 0; y < s.h; ++y) {
      for (std::size_t x = 0; x < s.w; ++x) {
        for (std::size_t c = 0; c < s.c; ++c) {
          const float g = grad_output.at(n, c, y, x);
          if (g == 0.0f) continue;
          const float D = denom_base(input, n, c, y, x);
          const float d_pow = std::pow(D, -cfg_.beta);
          const float a_c = input.at(n, c, y, x);
          const std::size_t lo = c >= half ? c - half : 0;
          const std::size_t hi = std::min(s.c - 1, c + half);
          for (std::size_t cc = lo; cc <= hi; ++cc) {
            float d = 0.0f;
            if (cc == c) d += d_pow;
            d -= 2.0f * cfg_.alpha / static_cast<float>(cfg_.size) *
                 cfg_.beta * a_c * input.at(n, cc, y, x) *
                 std::pow(D, -cfg_.beta - 1.0f);
            grad_in.at(n, cc, y, x) += g * d;
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace sparsetrain::nn
