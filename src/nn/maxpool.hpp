// Max pooling. Forward records the argmax positions; backward routes each
// gradient to the winning position (everything else is zero — the "natural
// sparsity" the paper attributes to pooling layers).
#pragma once

#include <optional>
#include <vector>

#include "nn/layer.hpp"

namespace sparsetrain::nn {

class MaxPool2D final : public Layer {
 public:
  /// Square window of size `kernel` moved with `stride` (defaults 2/2).
  explicit MaxPool2D(std::size_t kernel = 2, std::size_t stride = 2);

  std::string name() const override { return "maxpool"; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  Shape input_shape_{};
  /// Flat input index of the max element for each output element.
  std::optional<std::vector<std::size_t>> argmax_;
};

}  // namespace sparsetrain::nn
