#include "nn/maxpool.hpp"

#include "util/require.hpp"

namespace sparsetrain::nn {

MaxPool2D::MaxPool2D(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  ST_REQUIRE(kernel_ > 0 && stride_ > 0, "maxpool needs kernel/stride > 0");
}

Shape MaxPool2D::output_shape(const Shape& input) const {
  ST_REQUIRE(input.h >= kernel_ && input.w >= kernel_,
             "maxpool input smaller than window");
  return Shape{input.n, input.c, (input.h - kernel_) / stride_ + 1,
               (input.w - kernel_) / stride_ + 1};
}

Tensor MaxPool2D::forward(const Tensor& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  Tensor out(out_shape);
  std::vector<std::size_t> argmax(out_shape.size());

  for (std::size_t n = 0; n < out_shape.n; ++n) {
    for (std::size_t c = 0; c < out_shape.c; ++c) {
      for (std::size_t oy = 0; oy < out_shape.h; ++oy) {
        for (std::size_t ox = 0; ox < out_shape.w; ++ox) {
          float best = input.at(n, c, oy * stride_, ox * stride_);
          std::size_t best_idx =
              input.shape().index(n, c, oy * stride_, ox * stride_);
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const float v = input.at(n, c, iy, ix);
              if (v > best) {
                best = v;
                best_idx = input.shape().index(n, c, iy, ix);
              }
            }
          }
          out.at(n, c, oy, ox) = best;
          argmax[out_shape.index(n, c, oy, ox)] = best_idx;
        }
      }
    }
  }

  input_shape_ = input.shape();
  if (training) {
    argmax_ = std::move(argmax);
  } else {
    argmax_.reset();
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  ST_REQUIRE(argmax_.has_value(), "maxpool backward without training forward");
  ST_REQUIRE(grad_output.size() == argmax_->size(),
             "maxpool grad size mismatch");
  Tensor grad_in(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i)
    grad_in[(*argmax_)[i]] += grad_output[i];
  return grad_in;
}

}  // namespace sparsetrain::nn
