// Layer interface of the training framework.
//
// The framework implements the paper's three training stages explicitly:
// forward() is the Forward stage; backward() combines GTA (gradient to
// activations — its return value) and GTW (gradient to weights — written
// into each Param::grad). Layers cache whatever forward state their
// backward needs, so backward must follow a matching forward.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/param.hpp"
#include "tensor/tensor.hpp"

namespace sparsetrain::nn {

class Conv2D;

/// Transformation applied to an activation-gradient tensor in flight.
/// The pruning module implements this; the nn layer just applies it at the
/// paper's pruning positions (Fig. 4) without knowing the policy.
class GradientTransform {
 public:
  virtual ~GradientTransform() = default;

  /// Mutates grad in place (e.g. stochastic pruning).
  virtual void apply(Tensor& grad) = 0;
};

/// Abstract NN layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer name ("conv3x3-64", "relu", ...).
  virtual std::string name() const = 0;

  /// Output shape for a given input shape (without running anything).
  virtual Shape output_shape(const Shape& input) const = 0;

  /// Forward stage. `training` enables state caching and batch statistics.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backward stage: consumes d(loss)/d(output), returns d(loss)/d(input)
  /// and accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Visits every Conv2D nested inside this layer (for attaching pruners
  /// and instrumentation). Default: none.
  virtual void for_each_conv(const std::function<void(Conv2D&)>& fn) {
    (void)fn;
  }

  /// Like for_each_conv, but also reports whether the conv is directly
  /// followed by a BatchNorm (the paper's CONV-BN-ReLU structure, which
  /// moves the pruning position from dI to dO — Fig. 4). Default: none.
  virtual void for_each_conv_structure(
      const std::function<void(Conv2D&, bool followed_by_bn)>& fn) {
    (void)fn;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace sparsetrain::nn
