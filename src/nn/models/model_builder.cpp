#include "nn/models/model_builder.hpp"

#include <sstream>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/lrn.hpp"
#include "nn/maxpool.hpp"
#include "nn/pooling_misc.hpp"
#include "nn/relu.hpp"
#include "nn/residual.hpp"
#include "util/require.hpp"

namespace sparsetrain::nn::models {

namespace {

Conv2DConfig conv_cfg(std::size_t in_c, std::size_t out_c, std::size_t k,
                      std::size_t stride, std::size_t pad, bool bias) {
  Conv2DConfig cfg;
  cfg.in_channels = in_c;
  cfg.out_channels = out_c;
  cfg.kernel = k;
  cfg.stride = stride;
  cfg.padding = pad;
  cfg.bias = bias;
  return cfg;
}

std::size_t flat_features(const Sequential& net, const ModelInput& in) {
  const Shape out =
      net.output_shape(Shape{1, in.channels, in.height, in.width});
  return out.c * out.h * out.w;
}

}  // namespace

std::unique_ptr<Sequential> tiny_cnn(const ModelInput& in, std::size_t width) {
  auto net = std::make_unique<Sequential>("tiny-cnn");
  net->emplace<Conv2D>(conv_cfg(in.channels, width, 3, 1, 1, true));
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Conv2D>(conv_cfg(width, width * 2, 3, 1, 1, true));
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Flatten>();
  net->emplace<Linear>(flat_features(*net, in), in.classes);
  return net;
}

std::unique_ptr<Sequential> alexnet_s(const ModelInput& in,
                                      std::size_t base_width) {
  ST_REQUIRE(in.height >= 16 && in.width >= 16,
             "alexnet_s expects >= 16x16 inputs");
  auto net = std::make_unique<Sequential>("alexnet-s");
  net->emplace<Conv2D>(conv_cfg(in.channels, base_width, 3, 1, 1, true),
                       "conv1");
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Conv2D>(conv_cfg(base_width, base_width * 2, 3, 1, 1, true),
                       "conv2");
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Conv2D>(conv_cfg(base_width * 2, base_width * 4, 3, 1, 1, true),
                       "conv3");
  net->emplace<ReLU>();
  net->emplace<Conv2D>(conv_cfg(base_width * 4, base_width * 4, 3, 1, 1, true),
                       "conv4");
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Flatten>();
  net->emplace<Linear>(flat_features(*net, in), in.classes);
  return net;
}

std::unique_ptr<Sequential> alexnet_s_classic(const ModelInput& in,
                                              std::size_t base_width,
                                              std::uint64_t dropout_seed) {
  ST_REQUIRE(in.height >= 16 && in.width >= 16,
             "alexnet_s_classic expects >= 16x16 inputs");
  auto net = std::make_unique<Sequential>("alexnet-s-classic");
  net->emplace<Conv2D>(conv_cfg(in.channels, base_width, 3, 1, 1, true),
                       "conv1");
  net->emplace<ReLU>();
  net->emplace<Lrn>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Conv2D>(conv_cfg(base_width, base_width * 2, 3, 1, 1, true),
                       "conv2");
  net->emplace<ReLU>();
  net->emplace<Lrn>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Conv2D>(conv_cfg(base_width * 2, base_width * 4, 3, 1, 1, true),
                       "conv3");
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Flatten>();
  net->emplace<Dropout>(0.5f, Rng(dropout_seed));
  net->emplace<Linear>(flat_features(*net, in), in.classes);
  return net;
}

namespace {

/// One CONV-BN-ReLU / CONV-BN residual block with optional downsampling.
LayerPtr make_block(std::size_t in_c, std::size_t out_c, std::size_t stride,
                    const std::string& name) {
  Sequential main("main");
  main.emplace<Conv2D>(conv_cfg(in_c, out_c, 3, stride, 1, false),
                       name + "-conv1");
  main.emplace<BatchNorm2D>(out_c);
  main.emplace<ReLU>();
  main.emplace<Conv2D>(conv_cfg(out_c, out_c, 3, 1, 1, false),
                       name + "-conv2");
  main.emplace<BatchNorm2D>(out_c);

  Sequential shortcut("shortcut");
  if (stride != 1 || in_c != out_c) {
    shortcut.emplace<Conv2D>(conv_cfg(in_c, out_c, 1, stride, 0, false),
                             name + "-proj");
    shortcut.emplace<BatchNorm2D>(out_c);
  }
  return std::make_unique<ResidualBlock>(std::move(main), std::move(shortcut),
                                         name);
}

}  // namespace

std::unique_ptr<Sequential> resnet_s(const ModelInput& in,
                                     std::size_t blocks_per_stage,
                                     std::size_t base_width) {
  ST_REQUIRE(blocks_per_stage >= 1, "resnet_s needs >= 1 block per stage");
  auto net = std::make_unique<Sequential>("resnet-s");
  net->emplace<Conv2D>(conv_cfg(in.channels, base_width, 3, 1, 1, false),
                       "stem");
  net->emplace<BatchNorm2D>(base_width);
  net->emplace<ReLU>();

  std::size_t channels = base_width;
  for (std::size_t stage = 0; stage < 3; ++stage) {
    const std::size_t out_c = base_width << stage;
    for (std::size_t b = 0; b < blocks_per_stage; ++b) {
      const std::size_t stride = (stage > 0 && b == 0) ? 2 : 1;
      std::ostringstream os;
      os << "stage" << stage + 1 << "-block" << b + 1;
      net->append(make_block(channels, out_c, stride, os.str()));
      channels = out_c;
    }
  }

  net->emplace<GlobalAvgPool>();
  net->emplace<Flatten>();
  net->emplace<Linear>(channels, in.classes);
  return net;
}

}  // namespace sparsetrain::nn::models
