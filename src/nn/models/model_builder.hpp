// Trainable model builders.
//
// These are scaled-down, operator-faithful versions of the paper's AlexNet
// and ResNet evaluation models: the same structures (CONV-ReLU-MaxPool for
// AlexNet, CONV-BN-ReLU residual stages for ResNet), sized so end-to-end
// training runs on CPU within seconds. Full-size layer geometries (for the
// architecture simulator) live in src/workload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "nn/sequential.hpp"

namespace sparsetrain::nn::models {

struct ModelInput {
  std::size_t channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t classes = 10;
};

/// Two-conv CNN used by fast unit tests.
std::unique_ptr<Sequential> tiny_cnn(const ModelInput& in,
                                     std::size_t width = 8);

/// AlexNet-style stack: CONV-ReLU(-MaxPool) ×3 + linear classifier.
/// No batch-norm, so the pruning position is the CONV-ReLU one (dI).
std::unique_ptr<Sequential> alexnet_s(const ModelInput& in,
                                      std::size_t base_width = 16);

/// Classic AlexNet flavour: like alexnet_s but with LRN after the first
/// two conv stages and dropout before the classifier, matching the
/// original architecture's regularisers.
std::unique_ptr<Sequential> alexnet_s_classic(const ModelInput& in,
                                              std::size_t base_width = 16,
                                              std::uint64_t dropout_seed = 1);

/// ResNet-style network: CONV-BN-ReLU stem, `blocks_per_stage` residual
/// blocks in three stages (widths w, 2w, 4w; stride-2 transitions), global
/// average pooling, linear classifier. Pruning position: dO (CONV-BN-ReLU).
std::unique_ptr<Sequential> resnet_s(const ModelInput& in,
                                     std::size_t blocks_per_stage = 2,
                                     std::size_t base_width = 8);

}  // namespace sparsetrain::nn::models
