// Per-channel batch normalisation (2-D feature maps).
//
// Matters for the paper because the CONV-BN-ReLU structure changes where
// gradients are sparse: BN's backward redistributes mass, so dO at the CONV
// is dense until the pruning algorithm sparsifies it.
#pragma once

#include <optional>

#include "nn/layer.hpp"

namespace sparsetrain::nn {

class BatchNorm2D final : public Layer {
 public:
  explicit BatchNorm2D(std::size_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  std::string name() const override { return "batchnorm"; }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }

 private:
  std::size_t channels_;
  float eps_;
  float momentum_;
  Param gamma_;  ///< scale, initialised to 1
  Param beta_;   ///< shift, initialised to 0
  Tensor running_mean_;
  Tensor running_var_;

  // Cached training-forward state for backward.
  std::optional<Tensor> x_hat_;
  Tensor batch_inv_std_;
};

}  // namespace sparsetrain::nn
