// ReLU layer. The forward nonzero pattern is stored as the paper's "mask"
// and reused by the GTA step (and exported for MSRC mask skipping).
#pragma once

#include <optional>

#include "nn/layer.hpp"

namespace sparsetrain::nn {

class ReLU final : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Forward mask: 1 where the input was positive, else 0. Valid after a
  /// training forward.
  const Tensor& mask() const;

 private:
  std::optional<Tensor> mask_;
};

}  // namespace sparsetrain::nn
