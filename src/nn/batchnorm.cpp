#include "nn/batchnorm.hpp"

#include <cmath>

#include "util/require.hpp"

namespace sparsetrain::nn {

BatchNorm2D::BatchNorm2D(std::size_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("gamma", Shape::vec(channels)),
      beta_("beta", Shape::vec(channels)),
      running_mean_(Shape::vec(channels)),
      running_var_(Shape::vec(channels)),
      batch_inv_std_(Shape::vec(channels)) {
  ST_REQUIRE(channels_ > 0, "batchnorm needs channels > 0");
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm2D::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  ST_REQUIRE(s.c == channels_, "batchnorm channel mismatch");
  const std::size_t per_channel = s.n * s.h * s.w;
  ST_REQUIRE(per_channel > 0, "batchnorm needs non-empty spatial extent");

  Tensor out(s);
  Tensor x_hat(s);

  for (std::size_t c = 0; c < channels_; ++c) {
    float mean;
    float var;
    if (training) {
      double sum = 0.0;
      for (std::size_t n = 0; n < s.n; ++n)
        for (std::size_t y = 0; y < s.h; ++y)
          for (std::size_t x = 0; x < s.w; ++x) sum += input.at(n, c, y, x);
      mean = static_cast<float>(sum / static_cast<double>(per_channel));
      double sq = 0.0;
      for (std::size_t n = 0; n < s.n; ++n)
        for (std::size_t y = 0; y < s.h; ++y)
          for (std::size_t x = 0; x < s.w; ++x) {
            const double d = input.at(n, c, y, x) - mean;
            sq += d * d;
          }
      var = static_cast<float>(sq / static_cast<double>(per_channel));
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }

    const float inv_std = 1.0f / std::sqrt(var + eps_);
    batch_inv_std_[c] = inv_std;
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    for (std::size_t n = 0; n < s.n; ++n)
      for (std::size_t y = 0; y < s.h; ++y)
        for (std::size_t x = 0; x < s.w; ++x) {
          const float xh = (input.at(n, c, y, x) - mean) * inv_std;
          x_hat.at(n, c, y, x) = xh;
          out.at(n, c, y, x) = g * xh + b;
        }
  }

  if (training) {
    x_hat_ = std::move(x_hat);
  } else {
    x_hat_.reset();
  }
  return out;
}

Tensor BatchNorm2D::backward(const Tensor& grad_output) {
  ST_REQUIRE(x_hat_.has_value(), "batchnorm backward without training forward");
  const Shape& s = grad_output.shape();
  ST_REQUIRE(s == x_hat_->shape(), "batchnorm grad shape mismatch");
  const auto m = static_cast<float>(s.n * s.h * s.w);

  Tensor grad_in(s);
  for (std::size_t c = 0; c < channels_; ++c) {
    // Standard BN backward: dx = (γ/σ)·(dy − mean(dy) − x̂·mean(dy·x̂)).
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::size_t n = 0; n < s.n; ++n)
      for (std::size_t y = 0; y < s.h; ++y)
        for (std::size_t x = 0; x < s.w; ++x) {
          const float dy = grad_output.at(n, c, y, x);
          sum_dy += dy;
          sum_dy_xhat += dy * x_hat_->at(n, c, y, x);
        }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const float g_inv_std = gamma_.value[c] * batch_inv_std_[c];
    const float mean_dy = static_cast<float>(sum_dy) / m;
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat) / m;
    for (std::size_t n = 0; n < s.n; ++n)
      for (std::size_t y = 0; y < s.h; ++y)
        for (std::size_t x = 0; x < s.w; ++x) {
          const float dy = grad_output.at(n, c, y, x);
          const float xh = x_hat_->at(n, c, y, x);
          grad_in.at(n, c, y, x) =
              g_inv_std * (dy - mean_dy - xh * mean_dy_xhat);
        }
  }
  return grad_in;
}

}  // namespace sparsetrain::nn
