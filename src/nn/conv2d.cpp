#include "nn/conv2d.hpp"

#include <sstream>

#include "util/require.hpp"

namespace sparsetrain::nn {

Conv2D::Conv2D(Conv2DConfig cfg, std::string name)
    : cfg_(cfg),
      name_(std::move(name)),
      weight_("weight",
              Shape{cfg.out_channels, cfg.in_channels, cfg.kernel, cfg.kernel}),
      bias_("bias", Shape::vec(cfg.out_channels)) {
  ST_REQUIRE(cfg_.in_channels > 0 && cfg_.out_channels > 0,
             "conv needs positive channel counts");
  ST_REQUIRE(cfg_.kernel > 0 && cfg_.stride > 0, "conv needs kernel/stride > 0");
  if (name_.empty()) {
    std::ostringstream os;
    os << "conv" << cfg_.kernel << "x" << cfg_.kernel << "-"
       << cfg_.out_channels;
    name_ = os.str();
  }
}

Shape Conv2D::output_shape(const Shape& input) const {
  ST_REQUIRE(input.c == cfg_.in_channels,
             name_ + ": input channel mismatch, got " + input.to_string());
  ST_REQUIRE(input.h + 2 * cfg_.padding >= cfg_.kernel &&
                 input.w + 2 * cfg_.padding >= cfg_.kernel,
             name_ + ": input smaller than kernel");
  const std::size_t oh = (input.h + 2 * cfg_.padding - cfg_.kernel) / cfg_.stride + 1;
  const std::size_t ow = (input.w + 2 * cfg_.padding - cfg_.kernel) / cfg_.stride + 1;
  return Shape{input.n, cfg_.out_channels, oh, ow};
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  Tensor output(out_shape);

  const std::size_t K = cfg_.kernel;
  const std::size_t S = cfg_.stride;
  const std::size_t P = cfg_.padding;
  const Shape& in = input.shape();

  for (std::size_t n = 0; n < in.n; ++n) {
    for (std::size_t f = 0; f < cfg_.out_channels; ++f) {
      const float b = cfg_.bias ? bias_.value[f] : 0.0f;
      for (std::size_t oy = 0; oy < out_shape.h; ++oy) {
        for (std::size_t ox = 0; ox < out_shape.w; ++ox) {
          float acc = b;
          for (std::size_t c = 0; c < cfg_.in_channels; ++c) {
            for (std::size_t ky = 0; ky < K; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * S + ky) -
                  static_cast<std::ptrdiff_t>(P);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in.h)) continue;
              for (std::size_t kx = 0; kx < K; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * S + kx) -
                    static_cast<std::ptrdiff_t>(P);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in.w))
                  continue;
                acc += weight_.value.at(f, c, ky, kx) *
                       input.at(n, c, static_cast<std::size_t>(iy),
                                static_cast<std::size_t>(ix));
              }
            }
          }
          output.at(n, f, oy, ox) = acc;
        }
      }
    }
  }

  if (training) {
    cached_input_ = input;  // GTW needs I
  } else {
    cached_input_.reset();
  }
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  ST_REQUIRE(cached_input_.has_value(),
             name_ + ": backward without training forward");
  ST_REQUIRE(grad_output.shape() == output_shape(cached_input_->shape()),
             name_ + ": grad_output shape mismatch");

  // CONV-BN-ReLU pruning position: transform dO before it is consumed by
  // both GTA and GTW (this is what makes both steps sparse).
  Tensor grad_out = grad_output;
  if (output_grad_transform_) output_grad_transform_->apply(grad_out);

  grad_to_weights(grad_out);
  Tensor grad_in = grad_to_input(grad_out);

  // CONV-ReLU pruning position: transform dI before it propagates to the
  // previous layer (i.e. before it is "sent back to memory").
  if (input_grad_transform_) input_grad_transform_->apply(grad_in);

  if (probe_) {
    ConvStepDensities d;
    d.weights = weight_.value.density();
    d.weight_grads = weight_.grad.density();
    d.input_acts = cached_input_->density();
    d.input_grads = grad_in.density();
    d.output_acts = 1.0;  // pre-activation outputs are dense by construction
    d.output_grads = grad_out.density();
    probe_->record(name_, d);
  }
  return grad_in;
}

Tensor Conv2D::grad_to_input(const Tensor& grad_output) const {
  const Shape& in = cached_input_->shape();
  const Shape out = grad_output.shape();
  Tensor grad_in(in);

  const std::size_t K = cfg_.kernel;
  const std::size_t S = cfg_.stride;
  const std::size_t P = cfg_.padding;

  // dI[n,c,iy,ix] = Σ_{f,ky,kx} dO[n,f,oy,ox] · W[f,c,ky,kx]
  // with iy = oy·S + ky − P. Iterating over dO and scattering is the same
  // sum and keeps the inner loops dense.
  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t f = 0; f < out.c; ++f) {
      for (std::size_t oy = 0; oy < out.h; ++oy) {
        for (std::size_t ox = 0; ox < out.w; ++ox) {
          const float g = grad_output.at(n, f, oy, ox);
          if (g == 0.0f) continue;  // the sparsity the paper exploits
          for (std::size_t c = 0; c < cfg_.in_channels; ++c) {
            for (std::size_t ky = 0; ky < K; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * S + ky) -
                  static_cast<std::ptrdiff_t>(P);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in.h)) continue;
              for (std::size_t kx = 0; kx < K; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * S + kx) -
                    static_cast<std::ptrdiff_t>(P);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in.w))
                  continue;
                grad_in.at(n, c, static_cast<std::size_t>(iy),
                           static_cast<std::size_t>(ix)) +=
                    g * weight_.value.at(f, c, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2D::grad_to_weights(const Tensor& grad_output) {
  const Tensor& input = *cached_input_;
  const Shape& in = input.shape();
  const Shape out = grad_output.shape();

  const std::size_t K = cfg_.kernel;
  const std::size_t S = cfg_.stride;
  const std::size_t P = cfg_.padding;

  // dW[f,c,ky,kx] = Σ_{n,oy,ox} dO[n,f,oy,ox] · I[n,c,oy·S+ky−P,ox·S+kx−P]
  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t f = 0; f < out.c; ++f) {
      float bias_acc = 0.0f;
      for (std::size_t oy = 0; oy < out.h; ++oy) {
        for (std::size_t ox = 0; ox < out.w; ++ox) {
          const float g = grad_output.at(n, f, oy, ox);
          if (g == 0.0f) continue;
          bias_acc += g;
          for (std::size_t c = 0; c < cfg_.in_channels; ++c) {
            for (std::size_t ky = 0; ky < K; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * S + ky) -
                  static_cast<std::ptrdiff_t>(P);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in.h)) continue;
              for (std::size_t kx = 0; kx < K; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * S + kx) -
                    static_cast<std::ptrdiff_t>(P);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in.w))
                  continue;
                weight_.grad.at(f, c, ky, kx) +=
                    g * input.at(n, c, static_cast<std::size_t>(iy),
                                 static_cast<std::size_t>(ix));
              }
            }
          }
        }
      }
      if (cfg_.bias) bias_.grad[f] += bias_acc;
    }
  }
}

std::vector<Param*> Conv2D::params() {
  std::vector<Param*> ps{&weight_};
  if (cfg_.bias) ps.push_back(&bias_);
  return ps;
}

const Tensor& Conv2D::cached_input() const {
  ST_REQUIRE(cached_input_.has_value(), name_ + ": no cached input");
  return *cached_input_;
}

}  // namespace sparsetrain::nn
