// Local Response Normalisation — AlexNet's cross-channel normalisation.
//
// b[n,c,y,x] = a[n,c,y,x] / (k + α/n_size · Σ_{c'∈window} a[n,c',y,x]²)^β
// Included because the paper's AlexNet evaluation model uses it; LRN sits
// between CONV-ReLU pairs and (like BN) re-densifies gradients, which is
// part of why the pruning positions matter.
#pragma once

#include <optional>

#include "nn/layer.hpp"

namespace sparsetrain::nn {

struct LrnConfig {
  std::size_t size = 5;    ///< channel window
  float alpha = 1e-4f;
  float beta = 0.75f;
  float k = 2.0f;
};

class Lrn final : public Layer {
 public:
  explicit Lrn(LrnConfig cfg = {});

  std::string name() const override { return "lrn"; }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  /// k + α/size · Σ a² over the channel window, for (n, c, y, x).
  float denom_base(const Tensor& input, std::size_t n, std::size_t c,
                   std::size_t y, std::size_t x) const;

  LrnConfig cfg_;
  std::optional<Tensor> cached_input_;
};

}  // namespace sparsetrain::nn
