// Learning-rate schedules (the paper's training recipes use step decay).
#pragma once

#include <cstddef>
#include <vector>

namespace sparsetrain::nn {

/// Learning-rate policy queried once per epoch.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;

  /// Learning rate to use during `epoch` (0-based).
  virtual float rate(std::size_t epoch) const = 0;
};

/// Constant rate.
class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(float rate);
  float rate(std::size_t epoch) const override;

 private:
  float rate_;
};

/// Multiplies the base rate by `gamma` at each listed milestone epoch
/// (the classic ResNet ÷10 at fixed epochs recipe).
class StepDecayLr final : public LrSchedule {
 public:
  StepDecayLr(float base, std::vector<std::size_t> milestones,
              float gamma = 0.1f);
  float rate(std::size_t epoch) const override;

 private:
  float base_;
  std::vector<std::size_t> milestones_;
  float gamma_;
};

/// Smooth cosine annealing from `base` to `floor` over `total_epochs`.
class CosineLr final : public LrSchedule {
 public:
  CosineLr(float base, std::size_t total_epochs, float floor = 0.0f);
  float rate(std::size_t epoch) const override;

 private:
  float base_;
  std::size_t total_epochs_;
  float floor_;
};

}  // namespace sparsetrain::nn
