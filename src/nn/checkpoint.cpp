#include "nn/checkpoint.hpp"

#include <cstdint>
#include <fstream>

#include "util/require.hpp"

namespace sparsetrain::nn {

namespace {

constexpr std::uint32_t kMagic = 0x53545030;  // "STP0"

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool read_u32(std::ifstream& in, std::uint32_t& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

void write_string(std::ofstream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool read_string(std::ifstream& in, std::string& s) {
  std::uint32_t len = 0;
  if (!read_u32(in, len)) return false;
  s.resize(len);
  in.read(s.data(), len);
  return static_cast<bool>(in);
}

}  // namespace

bool save_checkpoint(Layer& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto params = net.params();
  write_u32(out, kMagic);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    write_string(out, p->name);
    const Shape& s = p->value.shape();
    write_u32(out, static_cast<std::uint32_t>(s.n));
    write_u32(out, static_cast<std::uint32_t>(s.c));
    write_u32(out, static_cast<std::uint32_t>(s.h));
    write_u32(out, static_cast<std::uint32_t>(s.w));
    out.write(reinterpret_cast<const char*>(p->value.flat().data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool load_checkpoint(Layer& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint32_t magic = 0, count = 0;
  if (!read_u32(in, magic) || !read_u32(in, count)) return false;
  ST_REQUIRE(magic == kMagic, "not a sparsetrain checkpoint: " + path);

  const auto params = net.params();
  ST_REQUIRE(params.size() == count,
             "checkpoint parameter count mismatch for " + path);
  for (Param* p : params) {
    std::string name;
    if (!read_string(in, name)) return false;
    ST_REQUIRE(name == p->name,
               "checkpoint parameter name mismatch: expected " + p->name +
                   ", found " + name);
    std::uint32_t n, c, h, w;
    if (!read_u32(in, n) || !read_u32(in, c) || !read_u32(in, h) ||
        !read_u32(in, w))
      return false;
    const Shape s{n, c, h, w};
    ST_REQUIRE(s == p->value.shape(),
               "checkpoint shape mismatch for " + name + ": " + s.to_string() +
                   " vs " + p->value.shape().to_string());
    in.read(reinterpret_cast<char*>(p->value.flat().data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!in) return false;
  }
  return true;
}

}  // namespace sparsetrain::nn
