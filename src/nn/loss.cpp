#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace sparsetrain::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::uint32_t>& labels) {
  const Shape& s = logits.shape();
  const std::size_t batch = s.n;
  const std::size_t classes = s.w;
  ST_REQUIRE(s.c == 1 && s.h == 1, "loss expects {N,1,1,classes} logits");
  ST_REQUIRE(labels.size() == batch, "labels/batch mismatch");

  Tensor probs(s);
  preds_.assign(batch, 0);
  double loss_sum = 0.0;

  for (std::size_t n = 0; n < batch; ++n) {
    ST_REQUIRE(labels[n] < classes, "label out of range");
    const auto row = logits.flat().subspan(n * classes, classes);
    const float maxv = *std::max_element(row.begin(), row.end());
    double denom = 0.0;
    for (std::size_t k = 0; k < classes; ++k)
      denom += std::exp(static_cast<double>(row[k] - maxv));
    std::size_t argmax = 0;
    for (std::size_t k = 0; k < classes; ++k) {
      const double p = std::exp(static_cast<double>(row[k] - maxv)) / denom;
      probs.at(n, 0, 0, k) = static_cast<float>(p);
      if (row[k] > row[argmax]) argmax = k;
    }
    preds_[n] = static_cast<std::uint32_t>(argmax);
    loss_sum -= std::log(
        std::max(1e-12, static_cast<double>(probs.at(n, 0, 0, labels[n]))));
  }

  probs_ = std::move(probs);
  labels_ = labels;
  return static_cast<float>(loss_sum / static_cast<double>(batch));
}

Tensor SoftmaxCrossEntropy::backward() const {
  ST_REQUIRE(probs_.has_value(), "loss backward without forward");
  const Shape& s = probs_->shape();
  Tensor grad = *probs_;
  const float scale = 1.0f / static_cast<float>(s.n);
  for (std::size_t n = 0; n < s.n; ++n) {
    grad.at(n, 0, 0, labels_[n]) -= 1.0f;
    for (std::size_t k = 0; k < s.w; ++k) grad.at(n, 0, 0, k) *= scale;
  }
  return grad;
}

double accuracy(const std::vector<std::uint32_t>& preds,
                const std::vector<std::uint32_t>& labels) {
  ST_REQUIRE(preds.size() == labels.size(), "accuracy arity mismatch");
  if (preds.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(preds.size());
}

}  // namespace sparsetrain::nn
