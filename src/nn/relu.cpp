#include "nn/relu.hpp"

#include "util/require.hpp"

namespace sparsetrain::nn {

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor out(input.shape());
  Tensor mask(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const bool pass = input[i] > 0.0f;
    out[i] = pass ? input[i] : 0.0f;
    mask[i] = pass ? 1.0f : 0.0f;
  }
  if (training) {
    mask_ = std::move(mask);
  } else {
    mask_.reset();
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  ST_REQUIRE(mask_.has_value(), "relu backward without training forward");
  ST_REQUIRE(grad_output.shape() == mask_->shape(),
             "relu grad shape mismatch");
  Tensor grad_in(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i)
    grad_in[i] = grad_output[i] * (*mask_)[i];
  return grad_in;
}

const Tensor& ReLU::mask() const {
  ST_REQUIRE(mask_.has_value(), "relu mask not available");
  return *mask_;
}

}  // namespace sparsetrain::nn
