#include "nn/trainer.hpp"

#include "util/require.hpp"

namespace sparsetrain::nn {

Trainer::Trainer(Sequential& net, TrainConfig cfg)
    : net_(net), cfg_(cfg), optimizer_(net.params(), cfg.sgd) {
  ST_REQUIRE(cfg_.batch_size > 0, "batch size must be positive");
}

float Trainer::step(const data::Batch& batch) {
  const Tensor logits = net_.forward(batch.images, /*training=*/true);
  const float loss = loss_.forward(logits, batch.labels);
  net_.backward(loss_.backward());
  optimizer_.step();
  if (step_hook_) step_hook_();
  return loss;
}

TrainResult Trainer::fit(const data::Dataset& train,
                         const data::Dataset& test) {
  TrainResult result;
  const std::size_t steps_per_epoch =
      (train.size() + cfg_.batch_size - 1) / cfg_.batch_size;

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    if (schedule_ != nullptr)
      optimizer_.set_learning_rate(schedule_->rate(epoch));
    double loss_sum = 0.0;
    std::size_t hits = 0;
    std::size_t seen = 0;
    for (std::size_t s = 0; s < steps_per_epoch; ++s) {
      const data::Batch batch =
          train.batch(s * cfg_.batch_size, cfg_.batch_size);
      loss_sum += step(batch);
      const auto& preds = loss_.predictions();
      for (std::size_t i = 0; i < preds.size(); ++i)
        if (preds[i] == batch.labels[i]) ++hits;
      seen += preds.size();
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / static_cast<double>(steps_per_epoch);
    stats.train_accuracy =
        static_cast<double>(hits) / static_cast<double>(seen);
    result.epochs.push_back(stats);
  }

  if (!result.epochs.empty())
    result.final_train_accuracy = result.epochs.back().train_accuracy;
  result.test_accuracy = evaluate(test);
  return result;
}

double Trainer::evaluate(const data::Dataset& dataset) {
  std::size_t hits = 0;
  std::size_t seen = 0;
  SoftmaxCrossEntropy eval_loss;
  const std::size_t steps =
      (dataset.size() + cfg_.batch_size - 1) / cfg_.batch_size;
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t first = s * cfg_.batch_size;
    const std::size_t count =
        std::min(cfg_.batch_size, dataset.size() - first);
    if (count == 0) break;
    const data::Batch batch = dataset.batch(first, count);
    const Tensor logits = net_.forward(batch.images, /*training=*/false);
    (void)eval_loss.forward(logits, batch.labels);
    const auto& preds = eval_loss.predictions();
    for (std::size_t i = 0; i < preds.size(); ++i)
      if (preds[i] == batch.labels[i]) ++hits;
    seen += count;
  }
  return seen == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(seen);
}

}  // namespace sparsetrain::nn
