// Inverted dropout — AlexNet's FC-layer regulariser.
#pragma once

#include <optional>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace sparsetrain::nn {

class Dropout final : public Layer {
 public:
  /// Drops activations with probability `rate` during training, scaling
  /// survivors by 1/(1−rate) so eval needs no rescaling.
  Dropout(float rate, Rng rng);

  std::string name() const override { return "dropout"; }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  float rate_;
  Rng rng_;
  std::optional<Tensor> mask_;  ///< 0 or 1/(1−rate) per element
};

}  // namespace sparsetrain::nn
