#include "workload/layer_config.hpp"

#include "util/require.hpp"

namespace sparsetrain::workload {

namespace {

LayerConfig conv(std::string name, std::size_t c, std::size_t h, std::size_t w,
                 std::size_t f, std::size_t k, std::size_t s, std::size_t p,
                 bool bn) {
  LayerConfig cfg;
  cfg.name = std::move(name);
  cfg.in_channels = c;
  cfg.in_h = h;
  cfg.in_w = w;
  cfg.out_channels = f;
  cfg.kernel = k;
  cfg.stride = s;
  cfg.padding = p;
  cfg.has_bn = bn;
  return cfg;
}

LayerConfig fc(std::string name, std::size_t in_features,
               std::size_t out_features, bool relu_after) {
  LayerConfig cfg = conv(std::move(name), in_features, 1, 1, out_features, 1,
                         1, 0, /*bn=*/false);
  cfg.relu_after = relu_after;
  cfg.is_fc = true;
  return cfg;
}

/// Appends one ResNet basic-block pair (two 3×3 convs) plus the projection
/// conv when the block downsamples.
void add_basic_block(std::vector<LayerConfig>& layers, const std::string& name,
                     std::size_t in_c, std::size_t out_c, std::size_t& h,
                     std::size_t& w, std::size_t stride) {
  layers.push_back(
      conv(name + ".conv1", in_c, h, w, out_c, 3, stride, 1, /*bn=*/true));
  const std::size_t oh = layers.back().out_h();
  const std::size_t ow = layers.back().out_w();
  layers.push_back(
      conv(name + ".conv2", out_c, oh, ow, out_c, 3, 1, 1, /*bn=*/true));
  if (stride != 1 || in_c != out_c) {
    layers.push_back(
        conv(name + ".proj", in_c, h, w, out_c, 1, stride, 0, /*bn=*/true));
    layers.back().relu_after = false;  // projection feeds the add directly
  }
  h = oh;
  w = ow;
}

NetworkConfig resnet(std::string name, std::size_t input_hw,
                     const std::vector<std::size_t>& blocks_per_stage,
                     bool imagenet_stem) {
  NetworkConfig net;
  net.name = std::move(name);
  std::size_t h = input_hw;
  std::size_t w = input_hw;
  std::size_t c;

  if (imagenet_stem) {
    net.layers.push_back(conv("stem", 3, h, w, 64, 7, 2, 3, /*bn=*/true));
    net.layers.front().first_layer = true;
    h = net.layers.front().out_h();
    w = net.layers.front().out_w();
    // 3×3/2 max-pool after the stem.
    h = (h - 1) / 2;
    w = (w - 1) / 2;
    c = 64;
  } else {
    net.layers.push_back(conv("stem", 3, h, w, 16, 3, 1, 1, /*bn=*/true));
    net.layers.front().first_layer = true;
    c = 16;
  }

  const std::size_t base = imagenet_stem ? 64 : 16;
  for (std::size_t stage = 0; stage < blocks_per_stage.size(); ++stage) {
    const std::size_t out_c = base << stage;
    for (std::size_t b = 0; b < blocks_per_stage[stage]; ++b) {
      const std::size_t stride = (stage > 0 && b == 0) ? 2 : 1;
      add_basic_block(net.layers,
                      "s" + std::to_string(stage + 1) + ".b" +
                          std::to_string(b + 1),
                      c, out_c, h, w, stride);
      c = out_c;
    }
  }
  net.layers.push_back(fc("fc", c, 1000, /*relu_after=*/false));
  if (!imagenet_stem) net.layers.back() = fc("fc", c, 10, false);
  return net;
}

}  // namespace

std::size_t NetworkConfig::total_forward_macs() const {
  std::size_t total = 0;
  for (const auto& l : layers) total += l.forward_macs();
  return total;
}

NetworkConfig alexnet_cifar() {
  // The common CIFAR adaptation of AlexNet (32×32 inputs, 5 convs + 3 FC,
  // 3×3 kernels, max-pools after conv1/conv2/conv5 shrinking 32→16→8→4).
  NetworkConfig net;
  net.name = "AlexNet/CIFAR";
  net.layers = {
      conv("conv1", 3, 32, 32, 64, 3, 1, 1, false),
      conv("conv2", 64, 16, 16, 192, 3, 1, 1, false),
      conv("conv3", 192, 8, 8, 384, 3, 1, 1, false),
      conv("conv4", 384, 8, 8, 256, 3, 1, 1, false),
      conv("conv5", 256, 8, 8, 256, 3, 1, 1, false),
      fc("fc6", 256 * 4 * 4, 4096, true),
      fc("fc7", 4096, 4096, true),
      fc("fc8", 4096, 10, false),
  };
  net.layers[0].first_layer = true;
  return net;
}

NetworkConfig alexnet_imagenet() {
  NetworkConfig net;
  net.name = "AlexNet/ImageNet";
  net.layers = {
      conv("conv1", 3, 227, 227, 96, 11, 4, 0, false),   // 55×55
      conv("conv2", 96, 27, 27, 256, 5, 1, 2, false),    // after 3×3/2 pool
      conv("conv3", 256, 13, 13, 384, 3, 1, 1, false),   // after pool
      conv("conv4", 384, 13, 13, 384, 3, 1, 1, false),
      conv("conv5", 384, 13, 13, 256, 3, 1, 1, false),
      fc("fc6", 256 * 6 * 6, 4096, true),
      fc("fc7", 4096, 4096, true),
      fc("fc8", 4096, 1000, false),
  };
  net.layers[0].first_layer = true;
  return net;
}

NetworkConfig resnet18_cifar() {
  return resnet("ResNet-18/CIFAR", 32, {2, 2, 2}, /*imagenet_stem=*/false);
}

NetworkConfig resnet18_imagenet() {
  return resnet("ResNet-18/ImageNet", 224, {2, 2, 2, 2},
                /*imagenet_stem=*/true);
}

NetworkConfig resnet34_cifar() {
  return resnet("ResNet-34/CIFAR", 32, {3, 4, 6}, /*imagenet_stem=*/false);
}

NetworkConfig resnet34_imagenet() {
  return resnet("ResNet-34/ImageNet", 224, {3, 4, 6, 3},
                /*imagenet_stem=*/true);
}

namespace {

/// Appends one VGG stage: `depth` same-shape 3×3 convs at `out_c`
/// channels, then the 2×2/2 max-pool that halves the spatial extent.
void add_vgg_stage(std::vector<LayerConfig>& layers, std::size_t stage,
                   std::size_t depth, std::size_t& c, std::size_t out_c,
                   std::size_t& hw) {
  for (std::size_t i = 0; i < depth; ++i) {
    layers.push_back(conv("conv" + std::to_string(stage) + "_" +
                              std::to_string(i + 1),
                          c, hw, hw, out_c, 3, 1, 1, /*bn=*/false));
    c = out_c;
  }
  hw /= 2;  // 2×2/2 max-pool
}

NetworkConfig vgg16(std::string name, std::size_t input_hw,
                    std::size_t head_width, std::size_t classes) {
  NetworkConfig net;
  net.name = std::move(name);
  std::size_t hw = input_hw;
  std::size_t c = 3;
  add_vgg_stage(net.layers, 1, 2, c, 64, hw);
  add_vgg_stage(net.layers, 2, 2, c, 128, hw);
  add_vgg_stage(net.layers, 3, 3, c, 256, hw);
  add_vgg_stage(net.layers, 4, 3, c, 512, hw);
  add_vgg_stage(net.layers, 5, 3, c, 512, hw);
  net.layers[0].first_layer = true;
  net.layers.push_back(fc("fc6", c * hw * hw, head_width, true));
  net.layers.push_back(fc("fc7", head_width, head_width, true));
  net.layers.push_back(fc("fc8", head_width, classes, false));
  return net;
}

}  // namespace

NetworkConfig vgg16_cifar() {
  // The common CIFAR adaptation keeps the 512-wide head (4096 would dwarf
  // the 1×1 feature map).
  return vgg16("VGG-16/CIFAR", 32, 512, 10);
}

NetworkConfig vgg16_imagenet() {
  return vgg16("VGG-16/ImageNet", 224, 4096, 1000);
}

NetworkConfig tiny_workload() {
  NetworkConfig net;
  net.name = "tiny";
  net.layers = {
      conv("conv1", 3, 8, 8, 4, 3, 1, 1, false),
      conv("conv2", 4, 8, 8, 8, 3, 1, 1, false),
  };
  net.layers[0].first_layer = true;
  return net;
}

std::vector<NetworkConfig> paper_workloads() {
  return {alexnet_cifar(),  resnet18_cifar(),    resnet34_cifar(),
          alexnet_imagenet(), resnet18_imagenet(), resnet34_imagenet()};
}

const std::vector<ZooEntry>& workload_zoo() {
  static const std::vector<ZooEntry> zoo = [] {
    std::vector<ZooEntry> z;
    z.push_back({alexnet_cifar(), ModelFamily::AlexNet, false});
    z.push_back({vgg16_cifar(), ModelFamily::VGG, false});
    z.push_back({resnet18_cifar(), ModelFamily::ResNet, false});
    z.push_back({resnet34_cifar(), ModelFamily::ResNet, false});
    z.push_back({alexnet_imagenet(), ModelFamily::AlexNet, true});
    z.push_back({vgg16_imagenet(), ModelFamily::VGG, true});
    z.push_back({resnet18_imagenet(), ModelFamily::ResNet, true});
    z.push_back({resnet34_imagenet(), ModelFamily::ResNet, true});
    return z;
  }();
  return zoo;
}

const ZooEntry& find_workload(const std::string& name) {
  for (const auto& entry : workload_zoo())
    if (entry.net.name == name) return entry;
  std::string known;
  for (const auto& entry : workload_zoo()) {
    if (!known.empty()) known += ", ";
    known += entry.net.name;
  }
  ST_REQUIRE(false, "no zoo workload named '" + name + "' (known: " + known +
                        ")");
  __builtin_unreachable();
}

const LayerConfig& find_layer(const std::string& workload,
                              const std::string& layer) {
  const ZooEntry& entry = find_workload(workload);
  for (const auto& l : entry.net.layers)
    if (l.name == layer) return l;
  ST_REQUIRE(false, "workload '" + workload + "' has no layer named '" +
                        layer + "'");
  __builtin_unreachable();
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  names.reserve(workload_zoo().size());
  for (const auto& entry : workload_zoo()) names.push_back(entry.net.name);
  return names;
}

}  // namespace sparsetrain::workload
