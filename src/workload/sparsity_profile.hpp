// Per-layer operand densities that drive the architecture simulator.
//
// The simulator is geometry + density driven: it does not need the actual
// tensor values, only how dense each operand stream is. Profiles come from
// three sources: fully dense (the baseline), measurements of our own
// training runs (SparsityMeter), or values calibrated to the paper's
// Table II for the full-size models we cannot train here.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workload/layer_config.hpp"

namespace sparsetrain::workload {

/// Densities of one layer's operand streams (1 = fully dense).
struct LayerDensities {
  double input_acts = 1.0;   ///< I (equals the previous ReLU mask density)
  double output_grads = 1.0; ///< dO after pruning (and ReLU masking)
  double mask = 1.0;         ///< the layer's own input-side ReLU mask for GTA
};

/// Density assignment for every layer of one network.
class SparsityProfile {
 public:
  SparsityProfile() = default;
  SparsityProfile(std::string name, std::vector<LayerDensities> layers);

  const std::string& name() const { return name_; }
  std::size_t size() const { return layers_.size(); }
  const LayerDensities& layer(std::size_t i) const;

  /// All-dense profile matching `net` (baseline training).
  static SparsityProfile dense(const NetworkConfig& net);

  /// Natural sparsity only: post-ReLU activations ≈ `act_density`, dO
  /// masked by ReLU for CONV-ReLU layers, dense dO for CONV-BN-ReLU.
  static SparsityProfile natural(const NetworkConfig& net,
                                 double act_density = 0.45);

  /// Natural sparsity + gradient pruning at rate p: dO density follows the
  /// stochastic-pruning analytics (≈ 1 − p + saturated survivors) stacked
  /// with the ReLU mask where one exists. This mirrors the paper's Table II
  /// operating points and is the profile behind Fig. 8/9.
  static SparsityProfile pruned(const NetworkConfig& net, double p,
                                double act_density = 0.45);

  /// Uniform per-layer densities (I at `i_density`, dO at `do_density`).
  /// Used to inject measured or paper-published density numbers.
  static SparsityProfile calibrated(const NetworkConfig& net,
                                    double i_density, double do_density,
                                    std::string name = "calibrated");

 private:
  std::string name_;
  std::vector<LayerDensities> layers_;
};

/// Post-pruning density of a N(0,σ) gradient population pruned at target
/// sparsity p with the stochastic rule (analytic closed form; see
/// tests/test_pruning.cpp for the derivation): 1 − p + p·E[|g| | |g|<τ]/τ.
double analytic_pruned_density(double p);

/// dO density published in the paper's Table II (ρ_nnz) for the given
/// family/dataset/pruning rate (ModelFamily lives in layer_config.hpp;
/// VGG calibrates like AlexNet). p == 0 returns the baseline (no-pruning)
/// density. Values between published p points are interpolated.
double paper_table2_do_density(ModelFamily family, bool imagenet, double p);

/// Activation (I) density consistent with the paper's models: AlexNet's
/// post-ReLU activations are sparser than ResNet's BN-ReLU ones.
double paper_act_density(ModelFamily family);

}  // namespace sparsetrain::workload
