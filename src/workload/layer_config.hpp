// Full-size network geometries used as simulator workloads.
//
// These describe the layer shapes of the paper's evaluation models
// (AlexNet, ResNet-18/34 at CIFAR and ImageNet input sizes) without any
// trainable state: the architecture simulator only needs geometry plus an
// operand sparsity profile. Fully-connected layers are modelled as 1×1
// convolutions over a 1×1 spatial extent, which is exactly what they are
// to the dataflow.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sparsetrain::workload {

/// One CONV (or FC-as-conv) layer of a simulator workload.
struct LayerConfig {
  std::string name;
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;
  bool has_bn = false;          ///< CONV-BN-ReLU structure (else CONV-ReLU)
  bool relu_after = true;       ///< a ReLU mask exists for the GTA step
  bool first_layer = false;     ///< no dI needed (nothing upstream)
  bool is_fc = false;           ///< fully-connected layer (1×1 spatial)

  std::size_t out_h() const {
    return (in_h + 2 * padding - kernel) / stride + 1;
  }
  std::size_t out_w() const {
    return (in_w + 2 * padding - kernel) / stride + 1;
  }

  /// Dense multiply count of one Forward pass for one sample.
  std::size_t forward_macs() const {
    return out_channels * out_h() * out_w() * in_channels * kernel * kernel;
  }
};

/// A named stack of layers (conv trunk of one evaluation model).
struct NetworkConfig {
  std::string name;
  std::vector<LayerConfig> layers;

  std::size_t total_forward_macs() const;
};

/// The paper's evaluation workloads (Fig. 8/9 x-axis).
NetworkConfig alexnet_cifar();
NetworkConfig alexnet_imagenet();
NetworkConfig resnet18_cifar();
NetworkConfig resnet18_imagenet();
NetworkConfig resnet34_cifar();
NetworkConfig resnet34_imagenet();

/// Small synthetic workload for tests.
NetworkConfig tiny_workload();

/// All six paper workloads in Fig. 8 order.
std::vector<NetworkConfig> paper_workloads();

}  // namespace sparsetrain::workload
