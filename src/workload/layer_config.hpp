// Full-size network geometries used as simulator workloads.
//
// These describe the layer shapes of the paper's evaluation models
// (AlexNet, ResNet-18/34 at CIFAR and ImageNet input sizes) without any
// trainable state: the architecture simulator only needs geometry plus an
// operand sparsity profile. Fully-connected layers are modelled as 1×1
// convolutions over a 1×1 spatial extent, which is exactly what they are
// to the dataflow.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sparsetrain::workload {

/// One CONV (or FC-as-conv) layer of a simulator workload.
struct LayerConfig {
  std::string name;
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;
  bool has_bn = false;          ///< CONV-BN-ReLU structure (else CONV-ReLU)
  bool relu_after = true;       ///< a ReLU mask exists for the GTA step
  bool first_layer = false;     ///< no dI needed (nothing upstream)
  bool is_fc = false;           ///< fully-connected layer (1×1 spatial)

  std::size_t out_h() const {
    return (in_h + 2 * padding - kernel) / stride + 1;
  }
  std::size_t out_w() const {
    return (in_w + 2 * padding - kernel) / stride + 1;
  }

  /// Dense multiply count of one Forward pass for one sample.
  std::size_t forward_macs() const {
    return out_channels * out_h() * out_w() * in_channels * kernel * kernel;
  }
};

/// A named stack of layers (conv trunk of one evaluation model).
struct NetworkConfig {
  std::string name;
  std::vector<LayerConfig> layers;

  std::size_t total_forward_macs() const;
};

/// Model family for density calibration (the paper's Table II lookups).
/// VGG shares AlexNet's CONV-ReLU structure (no BN), so it calibrates
/// like AlexNet; ResNet's BN-ReLU blocks densify gradients.
enum class ModelFamily { AlexNet, VGG, ResNet };

/// The paper's evaluation workloads (Fig. 8/9 x-axis).
NetworkConfig alexnet_cifar();
NetworkConfig alexnet_imagenet();
NetworkConfig resnet18_cifar();
NetworkConfig resnet18_imagenet();
NetworkConfig resnet34_cifar();
NetworkConfig resnet34_imagenet();

/// VGG-16 (classic, no BN) — not in the paper's evaluation, added to the
/// zoo for scenario coverage: deep stacks of same-shape 3×3 layers.
NetworkConfig vgg16_cifar();
NetworkConfig vgg16_imagenet();

/// Small synthetic workload for tests.
NetworkConfig tiny_workload();

/// All six paper workloads in Fig. 8 order.
std::vector<NetworkConfig> paper_workloads();

/// One workload-zoo entry: a full-size network plus the tags the density
/// calibration (Table II lookups) needs.
struct ZooEntry {
  NetworkConfig net;
  ModelFamily family = ModelFamily::AlexNet;
  bool imagenet = false;
};

/// The workload zoo: every full-size evaluation geometry — the paper's
/// six plus VGG-16 at both input sizes — CIFAR group first, each in
/// Fig. 8 order. Drivers and the exact-vs-statistical agreement matrix
/// iterate this instead of hand-picking networks.
const std::vector<ZooEntry>& workload_zoo();

/// Zoo entry by network name (e.g. "AlexNet/ImageNet"). Throws
/// ContractError naming the known entries on a miss.
const ZooEntry& find_workload(const std::string& name);

/// Layer by name inside a zoo network, e.g. ("AlexNet/ImageNet", "conv2").
/// Throws ContractError on unknown workload or layer.
const LayerConfig& find_layer(const std::string& workload,
                              const std::string& layer);

/// All zoo network names, in zoo order.
std::vector<std::string> workload_names();

}  // namespace sparsetrain::workload
