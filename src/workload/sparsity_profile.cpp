#include "workload/sparsity_profile.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace sparsetrain::workload {

SparsityProfile::SparsityProfile(std::string name,
                                 std::vector<LayerDensities> layers)
    : name_(std::move(name)), layers_(std::move(layers)) {}

const LayerDensities& SparsityProfile::layer(std::size_t i) const {
  ST_REQUIRE(i < layers_.size(), "profile layer index out of range");
  return layers_[i];
}

SparsityProfile SparsityProfile::dense(const NetworkConfig& net) {
  return SparsityProfile("dense",
                         std::vector<LayerDensities>(net.layers.size()));
}

SparsityProfile SparsityProfile::natural(const NetworkConfig& net,
                                         double act_density) {
  ST_REQUIRE(act_density > 0.0 && act_density <= 1.0,
             "activation density must be in (0,1]");
  std::vector<LayerDensities> layers(net.layers.size());
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const LayerConfig& l = net.layers[i];
    LayerDensities d;
    // The first layer sees the raw image (dense); later layers see
    // post-ReLU activations.
    d.input_acts = l.first_layer ? 1.0 : act_density;
    d.mask = d.input_acts;  // the mask *is* the nonzero pattern of I
    // dO of a CONV-ReLU layer inherits the ReLU mask; with BN in between
    // the gradients densify again.
    d.output_grads = (l.relu_after && !l.has_bn) ? act_density : 1.0;
    layers[i] = d;
  }
  return SparsityProfile("natural", std::move(layers));
}

SparsityProfile SparsityProfile::pruned(const NetworkConfig& net, double p,
                                        double act_density) {
  ST_REQUIRE(p >= 0.0 && p < 1.0, "pruning rate must be in [0,1)");
  SparsityProfile base = natural(net, act_density);
  const double rho = analytic_pruned_density(p);
  std::vector<LayerDensities> layers(base.layers_);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    // Pruning multiplies into whatever dO density the layer already has:
    // CONV-BN-ReLU layers go 1 → ρ; CONV-ReLU layers stack the mask with
    // the pruning survivors.
    layers[i].output_grads *= rho;
  }
  return SparsityProfile("pruned-p" + std::to_string(p), std::move(layers));
}

SparsityProfile SparsityProfile::calibrated(const NetworkConfig& net,
                                            double i_density,
                                            double do_density,
                                            std::string name) {
  ST_REQUIRE(i_density > 0.0 && i_density <= 1.0, "I density out of range");
  ST_REQUIRE(do_density > 0.0 && do_density <= 1.0, "dO density out of range");
  std::vector<LayerDensities> layers(net.layers.size());
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const LayerConfig& l = net.layers[i];
    LayerDensities d;
    d.input_acts = l.first_layer ? 1.0 : i_density;
    d.mask = d.input_acts;
    d.output_grads = do_density;
    layers[i] = d;
  }
  return SparsityProfile(std::move(name), std::move(layers));
}

double paper_table2_do_density(ModelFamily family, bool imagenet, double p) {
  ST_REQUIRE(p >= 0.0 && p < 1.0, "pruning rate must be in [0,1)");
  struct Point {
    double p;
    double rho;
  };
  // Table II ρ_nnz columns (CIFAR-10 rows and ImageNet rows); AlexNet's
  // gradients are already extremely sparse from the ReLU masks alone.
  static const Point alexnet_cifar[] = {
      {0.0, 0.09}, {0.7, 0.01}, {0.8, 0.01}, {0.9, 0.01}, {0.99, 0.01}};
  static const Point alexnet_imagenet[] = {
      {0.0, 0.07}, {0.7, 0.05}, {0.8, 0.04}, {0.9, 0.04}, {0.99, 0.02}};
  static const Point resnet_cifar[] = {
      {0.0, 1.0}, {0.7, 0.36}, {0.8, 0.35}, {0.9, 0.34}, {0.99, 0.31}};
  static const Point resnet_imagenet[] = {
      {0.0, 1.0}, {0.7, 0.41}, {0.8, 0.40}, {0.9, 0.38}, {0.99, 0.36}};

  // VGG has AlexNet's CONV-ReLU structure, so it calibrates off the same
  // published column.
  const Point* table = family != ModelFamily::ResNet
                           ? (imagenet ? alexnet_imagenet : alexnet_cifar)
                           : (imagenet ? resnet_imagenet : resnet_cifar);
  const std::size_t n = 5;
  if (p <= table[0].p) return table[0].rho;
  for (std::size_t i = 1; i < n; ++i) {
    if (p <= table[i].p) {
      const double t = (p - table[i - 1].p) / (table[i].p - table[i - 1].p);
      return table[i - 1].rho + t * (table[i].rho - table[i - 1].rho);
    }
  }
  return table[n - 1].rho;
}

double paper_act_density(ModelFamily family) {
  return family != ModelFamily::ResNet ? 0.35 : 0.45;
}

double analytic_pruned_density(double p) {
  ST_REQUIRE(p >= 0.0 && p < 1.0, "pruning rate must be in [0,1)");
  if (p == 0.0) return 1.0;
  const double tau = inverse_normal_cdf((1.0 + p) / 2.0);
  // E[|g|; |g| < τ] for a unit normal = √(2/π)·(1 − exp(−τ²/2)).
  const double partial_mean =
      std::sqrt(2.0 / M_PI) * (1.0 - std::exp(-tau * tau / 2.0));
  const double saturated = partial_mean / tau;  // fraction kept as ±τ
  return 1.0 - p + saturated;
}

}  // namespace sparsetrain::workload
